package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is the sweep runner every experiment fans out through. Each
// experiment decomposes into independent cells (one chip run, one analytic
// bundle, one fault-rate point); the engine executes them across a worker
// pool and the experiment assembles results into index-addressed slots.
//
// Determinism is structural, not accidental: cells write only their own
// slot, every cell's inputs are derived from the seed before the fan-out
// starts, and error selection is by lowest cell index rather than by
// completion order. A run with Workers=1 is therefore byte-identical to a
// run with Workers=N — the bit-identity tests pin this under -race.
type Engine struct {
	// Workers caps how many cells run concurrently: 0 means GOMAXPROCS,
	// 1 runs the cells inline (serial). Each simulation cell may itself
	// use market-level round parallelism (cmpsim.Config.MarketWorkers);
	// the two pools compose but oversubscribe if both are set wide.
	Workers int
}

func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0..n-1), at most workers() cells at a time, and returns
// the error of the lowest-indexed failing cell (deterministic regardless of
// scheduling). The serial path runs inline — no goroutines, so a profiler
// or debugger sees a plain call stack — and short-circuits on first error
// exactly as the pre-engine serial loops did.
func (e Engine) forEach(n int, fn func(i int) error) error {
	w := e.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
