package experiments

import (
	"strings"
	"testing"
)

// golden_test.go pins the deterministic renderers' exact output so CLI
// format changes are deliberate.

func TestGoldenTable1(t *testing.T) {
	var sb strings.Builder
	RenderTable1(&sb)
	const want = `# Table 1: system configuration (modelled)
parameter                                  8-core        64-core
Number of cores                                 8             64
Power budget (W)                               80            640
Shared L2 capacity (MB)                         4             32
Shared L2 associativity (ways)                 16             32
Memory controller channels                      2             16
Frequency (GHz)                           0.8-4.0        0.8-4.0
Voltage (V)                               0.8-1.2        0.8-1.2
Cache region granularity (kB)                 128            128
UMON set-sampling rate                         32             32
UMON stack-distance cap (regions)              16             16

# core-internal parameters folded into per-application CPIBase:
#   4-way OoO fetch/issue/commit, 128-entry ROB, 32-entry LSQs,
#   tournament branch predictor, 32 kB split L1s (2/3-cycle)
`
	if sb.String() != want {
		t.Errorf("Table 1 render changed:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

func TestGoldenFig1Anchors(t *testing.T) {
	var sb strings.Builder
	RenderFig1(&sb, Fig1(3))
	out := sb.String()
	for _, anchor := range []string{
		"   0.000        0.0000        0.0000",
		"   0.500        0.5000        0.4495",
		"   1.000        0.7500        0.8284",
	} {
		if !strings.Contains(out, anchor) {
			t.Errorf("Figure 1 render missing anchor row %q in:\n%s", anchor, out)
		}
	}
}
