package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/fault"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// DefaultFaultRates is the sweep grid of the resilience experiment: the
// probability that any given monitor reading is corrupted (the solver-stall
// rate tracks it, the per-evaluation utility-fault rate is a tenth of it —
// utilities are evaluated many times per equilibrium, so an equal rate
// would fail essentially every run and measure nothing but the fallback).
var DefaultFaultRates = []float64{0.02, 0.05, 0.10, 0.20}

// faultConfigAt maps one sweep point onto the injector configuration.
func faultConfigAt(rate float64, seed uint64) fault.Config {
	return fault.Config{
		MonitorRate: rate,
		SolverRate:  rate,
		UtilityRate: rate / 10,
		Seed:        seed,
	}
}

// ResilienceRow is one fault-rate point of the sweep.
type ResilienceRow struct {
	FaultRate float64
	// WeightedSpeedup is the achieved efficiency; Retained normalises it
	// to the fault-free baseline run.
	WeightedSpeedup float64
	Retained        float64
	EnvyFreeness    float64
	// MUR and MBR come from the final installed market outcome (NaN if
	// the run ended with no market allocation installed).
	MUR float64
	MBR float64
	// MinMBR is the lowest MBR of any outcome the allocator produced
	// during the run; FloorOK reports it never dipped below the
	// configured ReBudget fairness floor.
	MinMBR  float64
	FloorOK bool
	// Health and Faults are the pipeline telemetry of the run.
	Health metrics.Health
	Faults fault.Stats
}

// ResilienceResult is the fault-rate sweep of one bundle under ReBudget
// with the degraded-mode pipeline active.
type ResilienceResult struct {
	Cores     int
	Mechanism string
	// MBRFloor is the Theorem 2 floor the mechanism guarantees; every
	// row's MinMBR is checked against it.
	MBRFloor float64
	// Baseline is the fault-free weighted speedup all rows normalise to.
	Baseline float64
	// BaselineEF is the fault-free envy-freeness.
	BaselineEF float64
	Rows       []ResilienceRow
}

// floorWatch wraps an allocator to record the minimum MBR across every
// outcome it produces during a run — the per-interval evidence that the
// fairness floor held under faults, not just at the final allocation.
type floorWatch struct {
	inner core.Allocator
	mu    sync.Mutex
	min   float64
	seen  bool
}

func newFloorWatch(inner core.Allocator) *floorWatch {
	return &floorWatch{inner: inner, min: math.Inf(1)}
}

// Name implements core.Allocator.
func (f *floorWatch) Name() string { return f.inner.Name() }

// Allocate implements core.Allocator.
func (f *floorWatch) Allocate(capacity []float64, players []core.PlayerSpec) (*core.Outcome, error) {
	out, err := f.inner.Allocate(capacity, players)
	if err == nil && !math.IsNaN(out.MBR) {
		f.mu.Lock()
		f.seen = true
		if out.MBR < f.min {
			f.min = out.MBR
		}
		f.mu.Unlock()
	}
	return out, err
}

// WithRoundHook implements core.RoundHooker so solver-stall faults reach
// the wrapped mechanism. The hook is threaded in place: the caller's handle
// keeps observing the run.
func (f *floorWatch) WithRoundHook(hook func(iteration int) bool) core.Allocator {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inner = core.WithRoundHook(f.inner, hook)
	return f
}

// RunResilience sweeps fault rates over one CPBN bundle under ReBudget-20
// with the degraded-mode pipeline active, reporting how much of the
// fault-free efficiency and fairness each rate retains. A nil rates slice
// selects DefaultFaultRates.
func RunResilience(cfg cmpsim.Config, seed uint64, rates []float64) (*ResilienceResult, error) {
	return Engine{}.RunResilience(cfg, seed, rates)
}

// RunResilience is the engine-scheduled fault sweep. The fault-free
// baseline and every fault-rate point are independent chips (each injector
// seeds its own RNG), so they fan out as cells; Retained is normalised
// against the baseline only after every cell has landed, which keeps the
// rows identical to the old baseline-first serial order.
func (e Engine) RunResilience(cfg cmpsim.Config, seed uint64, rates []float64) (*ResilienceResult, error) {
	if rates == nil {
		rates = DefaultFaultRates
	}
	bundle, err := workload.Generate(workload.CPBN, cfg.Cores, numeric.NewRand(seed))
	if err != nil {
		return nil, err
	}
	mech := core.ReBudget{Step: 20}
	floor, err := mech.EffectiveMBRFloor()
	if err != nil {
		return nil, err
	}
	res := &ResilienceResult{Cores: cfg.Cores, Mechanism: mech.Name(), MBRFloor: floor}

	runAt := func(rate float64) (ResilienceRow, error) {
		runCfg := cfg
		if rate > 0 {
			runCfg.Faults = faultConfigAt(rate, seed)
		}
		chip, err := cmpsim.NewChip(runCfg, bundle)
		if err != nil {
			return ResilienceRow{}, err
		}
		watch := newFloorWatch(mech)
		r, err := chip.Run(watch)
		if err != nil {
			return ResilienceRow{}, err
		}
		row := ResilienceRow{
			FaultRate:       rate,
			WeightedSpeedup: r.WeightedSpeedup,
			EnvyFreeness:    r.EnvyFreeness,
			MUR:             math.NaN(),
			MBR:             math.NaN(),
			MinMBR:          math.NaN(),
			FloorOK:         true,
			Health:          r.Health,
			Faults:          r.Faults,
		}
		if r.FinalOutcome != nil {
			row.MUR = r.FinalOutcome.MUR
			row.MBR = r.FinalOutcome.MBR
		}
		if watch.seen {
			row.MinMBR = watch.min
			row.FloorOK = watch.min >= floor-1e-9
		}
		return row, nil
	}

	// Cell 0 is the fault-free baseline; cells 1..len(rates) are the sweep
	// points, each writing its own row slot.
	rows := make([]ResilienceRow, 1+len(rates))
	err = e.forEach(1+len(rates), func(i int) error {
		rate := 0.0
		if i > 0 {
			rate = rates[i-1]
		}
		row, err := runAt(rate)
		if err != nil {
			if i == 0 {
				return fmt.Errorf("experiments: resilience baseline: %w", err)
			}
			return fmt.Errorf("experiments: resilience at fault rate %g: %w", rate, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Baseline = rows[0].WeightedSpeedup
	res.BaselineEF = rows[0].EnvyFreeness
	for _, row := range rows[1:] {
		if res.Baseline > 0 {
			row.Retained = row.WeightedSpeedup / res.Baseline
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderResilience prints the sweep.
func RenderResilience(w io.Writer, r *ResilienceResult) {
	fmt.Fprintf(w, "# Resilience: %d-core detailed simulation, %s under injected faults\n", r.Cores, r.Mechanism)
	fmt.Fprintf(w, "# fault rate = per-reading monitor corruption = solver stall rate; utility fault rate is rate/10\n")
	fmt.Fprintf(w, "# fault-free baseline: weighted speedup %.3f, envy-freeness %.3f; MBR floor %.2f\n",
		r.Baseline, r.BaselineEF, r.MBRFloor)
	fmt.Fprintf(w, "%6s %8s %9s %6s %6s %7s %6s %6s %6s %7s %7s %7s %7s %7s\n",
		"rate", "speedup", "retained", "EF", "MUR", "minMBR", "floor", "fails", "pinned", "repairs", "stalls", "nonconv", "state", "trans")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6.2f %8.3f %8.1f%% %6.3f %6.3f %7.3f %6v %6d %6d %7d %7d %7d %7s %7d\n",
			row.FaultRate, row.WeightedSpeedup, 100*row.Retained, row.EnvyFreeness,
			row.MUR, row.MinMBR, row.FloorOK,
			row.Health.AllocFailures, row.Health.PinnedIntervals, row.Health.CurveRepairs,
			row.Faults.SolverStalls, row.Health.NonConverged, row.Health.State, row.Health.Transitions)
	}
}
