package experiments

import (
	"fmt"
	"io"
	"math"

	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// ValidationRow compares one application's analytically modelled utility
// (phase 1) against its measured normalised performance in the detailed
// simulator (phase 2), both under the same mechanism — the paper's own
// cross-check ("we use these results to validate our first phase
// evaluation", §6).
type ValidationRow struct {
	App       string
	Class     string
	Predicted float64 // analytic utility at the final simulated allocation
	Measured  float64 // normalised throughput achieved in the simulator
}

// PhaseValidation runs one bundle under EqualBudget in the detailed
// simulator, then evaluates the analytic utility model at the allocation
// the simulator settled on. Close agreement means the phase-1 sweep's
// conclusions carry over to execution-driven results.
func PhaseValidation(cfg cmpsim.Config, seed uint64) ([]ValidationRow, float64, error) {
	bundle, err := workload.Generate(workload.CPBN, cfg.Cores, numeric.NewRand(seed))
	if err != nil {
		return nil, 0, err
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		return nil, 0, err
	}
	chip, err := cmpsim.NewChip(cfg, bundle)
	if err != nil {
		return nil, 0, err
	}
	res, err := chip.Run(core.EqualBudget{})
	if err != nil {
		return nil, 0, err
	}
	if res.FinalOutcome == nil {
		return nil, 0, fmt.Errorf("experiments: simulation recorded no allocation")
	}
	var rows []ValidationRow
	mae := 0.0
	for i, a := range bundle.Apps {
		pred := setup.Utilities[i].Value(res.FinalOutcome.Allocations[i])
		meas := res.NormPerf[i]
		rows = append(rows, ValidationRow{
			App:       fmt.Sprintf("%s#%d", a.Name, i),
			Class:     a.Class.String(),
			Predicted: pred,
			Measured:  meas,
		})
		mae += math.Abs(pred - meas)
	}
	mae /= float64(len(rows))
	return rows, mae, nil
}

// RenderValidation prints the per-application comparison.
func RenderValidation(w io.Writer, rows []ValidationRow, mae float64) {
	fmt.Fprintln(w, "# phase-1 vs phase-2 validation (EqualBudget, CPBN bundle)")
	fmt.Fprintln(w, "# predicted = analytic utility at the simulator's final allocation;")
	fmt.Fprintln(w, "# measured  = normalised throughput achieved in the detailed simulation")
	fmt.Fprintf(w, "%-14s %6s %10s %10s %8s\n", "app", "class", "predicted", "measured", "error")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %6s %10.3f %10.3f %+8.3f\n",
			r.App, r.Class, r.Predicted, r.Measured, r.Measured-r.Predicted)
	}
	fmt.Fprintf(w, "mean absolute error: %.3f\n", mae)
}
