package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// CategorySummary breaks one mechanism's sweep results down by bundle
// category — the lens §6.1 uses when it explains why EqualShare closes the
// gap on BBPN bundles and why BBPC/CPBB bundles suffer the Tragedy of the
// Commons under EqualBudget.
type CategorySummary struct {
	Category  workload.Category
	Mechanism string
	MedianEff float64
	MinEff    float64
	MedianEF  float64
}

// SummarizeByCategory computes per-category medians for every mechanism.
func (s *SweepResult) SummarizeByCategory() []CategorySummary {
	byCat := map[workload.Category][]int{}
	for bi, b := range s.Bundles {
		byCat[b.Bundle.Category] = append(byCat[b.Bundle.Category], bi)
	}
	var out []CategorySummary
	for _, cat := range workload.Categories() {
		idxs := byCat[cat]
		if len(idxs) == 0 {
			continue
		}
		for mi, name := range s.Mechanisms {
			var eff, efs []float64
			for _, bi := range idxs {
				eff = append(eff, s.Bundles[bi].Efficiency[mi])
				efs = append(efs, s.Bundles[bi].EnvyFreeness[mi])
			}
			out = append(out, CategorySummary{
				Category:  cat,
				Mechanism: name,
				MedianEff: numeric.Median(eff),
				MinEff:    numeric.Min(eff),
				MedianEF:  numeric.Median(efs),
			})
		}
	}
	return out
}

// RenderCategorySummary prints the per-category table, one block per
// category in the paper's order.
func RenderCategorySummary(w io.Writer, s *SweepResult) {
	fmt.Fprintln(w, "# per-category breakdown (§6.1)")
	rows := s.SummarizeByCategory()
	var last workload.Category
	for _, r := range rows {
		if r.Category != last {
			fmt.Fprintf(w, "\n## %s\n%-14s %8s %8s %8s\n", r.Category, "mechanism", "medEff", "minEff", "medEF")
			last = r.Category
		}
		fmt.Fprintf(w, "%-14s %8.3f %8.3f %8.3f\n", r.Mechanism, r.MedianEff, r.MinEff, r.MedianEF)
	}
}
