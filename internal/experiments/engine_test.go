package experiments

import (
	"math"
	"reflect"
	"testing"

	"rebudget/internal/cmpsim"
)

// engineTestConfig is a reduced detailed-simulation config small enough to
// run the same experiment twice in a test, but with enough epochs that the
// market actually reallocates and any cross-cell interference would show.
func engineTestConfig(cores int) cmpsim.Config {
	cfg := cmpsim.DefaultConfig(cores)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	return cfg
}

func fig5BitEqual(t *testing.T, a, b *Fig5Result) {
	t.Helper()
	if a.Cores != b.Cores || !reflect.DeepEqual(a.Mechanisms, b.Mechanisms) {
		t.Fatalf("result shape differs: %v vs %v", a.Mechanisms, b.Mechanisms)
	}
	if len(a.Bundles) != len(b.Bundles) {
		t.Fatalf("bundle count differs: %d vs %d", len(a.Bundles), len(b.Bundles))
	}
	for bi := range a.Bundles {
		x, y := a.Bundles[bi], b.Bundles[bi]
		if x.Category != y.Category ||
			!floatsBitEqual(x.Efficiency, y.Efficiency) ||
			!floatsBitEqual(x.EnvyFreeness, y.EnvyFreeness) ||
			!floatsBitEqual(x.MeanIterations, y.MeanIterations) ||
			math.Float64bits(x.MaxEffEF) != math.Float64bits(y.MaxEffEF) {
			t.Errorf("bundle %d (%s): parallel fig5 diverged from serial", bi, x.Category)
		}
	}
}

// TestEngineFig5Determinism runs the detailed-simulation comparison once
// inline and once across four workers. Every cell writes a disjoint slot and
// the alone-performance cache is singleflighted, so the two results must be
// bit-identical — not approximately equal. Run under -race this also pins
// that the fan-out shares no unsynchronised state.
func TestEngineFig5Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed simulation in -short mode")
	}
	serial, err := Engine{Workers: 1}.RunFig5(engineTestConfig(4), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Engine{Workers: 4}.RunFig5(engineTestConfig(4), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	fig5BitEqual(t, serial, parallel)
}

// TestEngineSweepDeterminism pins the analytic sweep the same way: the
// worker-pool fan-out over bundles must assemble a result byte-identical to
// the serial loop.
func TestEngineSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	serial, err := Engine{Workers: 1}.RunSweep(8, 1, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Engine{Workers: 4}.RunSweep(8, 1, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cores != parallel.Cores || !reflect.DeepEqual(serial.Mechanisms, parallel.Mechanisms) {
		t.Fatalf("sweep shape differs: %v vs %v", serial.Mechanisms, parallel.Mechanisms)
	}
	if len(serial.Bundles) != len(parallel.Bundles) {
		t.Fatalf("bundle count differs: %d vs %d", len(serial.Bundles), len(parallel.Bundles))
	}
	for bi := range serial.Bundles {
		if !bundlesBitEqual(t, serial.Bundles[bi], parallel.Bundles[bi]) {
			t.Errorf("bundle %d (%s): parallel sweep diverged from serial",
				bi, serial.Bundles[bi].Bundle.Category)
		}
	}
}

func resilienceRowBitEqual(a, b ResilienceRow) bool {
	return math.Float64bits(a.FaultRate) == math.Float64bits(b.FaultRate) &&
		math.Float64bits(a.WeightedSpeedup) == math.Float64bits(b.WeightedSpeedup) &&
		math.Float64bits(a.Retained) == math.Float64bits(b.Retained) &&
		math.Float64bits(a.EnvyFreeness) == math.Float64bits(b.EnvyFreeness) &&
		math.Float64bits(a.MUR) == math.Float64bits(b.MUR) &&
		math.Float64bits(a.MBR) == math.Float64bits(b.MBR) &&
		math.Float64bits(a.MinMBR) == math.Float64bits(b.MinMBR) &&
		a.FloorOK == b.FloorOK &&
		a.Health == b.Health &&
		a.Faults == b.Faults
}

// TestEngineResilienceDeterminism pins the fault sweep: the baseline and the
// fault-rate cells fan out concurrently, yet normalising Retained after the
// barrier must reproduce the old baseline-first serial rows exactly.
func TestEngineResilienceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed simulation in -short mode")
	}
	rates := []float64{0.05, 0.20}
	serial, err := Engine{Workers: 1}.RunResilience(engineTestConfig(4), 5, rates)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Engine{Workers: 3}.RunResilience(engineTestConfig(4), 5, rates)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cores != parallel.Cores || serial.Mechanism != parallel.Mechanism ||
		math.Float64bits(serial.MBRFloor) != math.Float64bits(parallel.MBRFloor) ||
		math.Float64bits(serial.Baseline) != math.Float64bits(parallel.Baseline) ||
		math.Float64bits(serial.BaselineEF) != math.Float64bits(parallel.BaselineEF) {
		t.Fatalf("resilience header differs: %+v vs %+v", serial, parallel)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if !resilienceRowBitEqual(serial.Rows[i], parallel.Rows[i]) {
			t.Errorf("rate %g: parallel resilience diverged from serial", serial.Rows[i].FaultRate)
		}
	}
}
