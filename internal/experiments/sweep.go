package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// DefaultMechanisms returns the §6 line-up, excluding the MaxEfficiency
// reference (which the sweep always runs to normalise against).
func DefaultMechanisms() []core.Allocator {
	return []core.Allocator{
		core.EqualShare{},
		core.EqualBudget{},
		core.Balanced{},
		core.ReBudget{Step: 20},
		core.ReBudget{Step: 40},
	}
}

// InstrumentedMechanisms is DefaultMechanisms with a market-config
// transform threaded through every market-running mechanism — how callers
// set the equilibrium worker count or install a profiling observer on the
// standard line-up without rebuilding it by hand.
func InstrumentedMechanisms(apply func(market.Config) market.Config) []core.Allocator {
	mechs := DefaultMechanisms()
	for i, m := range mechs {
		mechs[i] = core.WithMarketConfig(m, apply)
	}
	return mechs
}

// BundleResult is one bundle's outcome across mechanisms.
type BundleResult struct {
	Bundle workload.Bundle
	// Per mechanism, aligned with SweepResult.Mechanisms.
	Efficiency   []float64 // normalised to MaxEfficiency
	EnvyFreeness []float64
	MUR          []float64 // NaN for non-market mechanisms
	MBR          []float64
	EFBound      []float64
	Iterations   []int // equilibrium bidding–pricing rounds (0 = non-market)
	Runs         []int // equilibrium runs (ReBudget re-converges)
	Converged    []bool
	MaxEffEF     float64 // envy-freeness of the MaxEfficiency allocation
}

// SweepResult is the Figure 4 dataset: every bundle × mechanism, analytical
// phase (perfectly modelled convexified utilities).
type SweepResult struct {
	Cores      int
	Mechanisms []string
	Bundles    []BundleResult
}

// RunSweep reproduces the §6 phase-1 sweep: perCategory bundles per
// category at the given core count, each allocated by every mechanism and
// normalised to MaxEfficiency. Work is spread across CPUs; results are
// deterministic for a fixed seed and independent of the worker count.
func RunSweep(cores, perCategory int, seed uint64, mechs []core.Allocator) (*SweepResult, error) {
	return Engine{}.RunSweep(cores, perCategory, seed, mechs)
}

// RunSweep is the engine-scheduled sweep: one cell per bundle, each writing
// only its own result slot.
func (e Engine) RunSweep(cores, perCategory int, seed uint64, mechs []core.Allocator) (*SweepResult, error) {
	if mechs == nil {
		mechs = DefaultMechanisms()
	}
	bundles, err := workload.GenerateAll(cores, perCategory, seed)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Cores: cores, Bundles: make([]BundleResult, len(bundles))}
	for _, m := range mechs {
		res.Mechanisms = append(res.Mechanisms, m.Name())
	}
	err = e.forEach(len(bundles), func(bi int) error {
		br, err := runBundle(bundles[bi], mechs)
		if err != nil {
			return fmt.Errorf("bundle %d (%s): %w", bi, bundles[bi].Category, err)
		}
		res.Bundles[bi] = *br
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runBundle(b workload.Bundle, mechs []core.Allocator) (*BundleResult, error) {
	setup, err := workload.NewSetup(b)
	if err != nil {
		return nil, err
	}
	maxEff, err := (core.MaxEfficiency{}).Allocate(setup.Capacity, setup.Players)
	if err != nil {
		return nil, err
	}
	opt := maxEff.Efficiency()
	if opt <= 0 {
		return nil, fmt.Errorf("experiments: non-positive optimal efficiency")
	}
	br := &BundleResult{Bundle: b}
	br.MaxEffEF, err = maxEff.EnvyFreeness(setup.Players)
	if err != nil {
		return nil, err
	}
	for _, mech := range mechs {
		out, err := mech.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			return nil, err
		}
		ef, err := out.EnvyFreeness(setup.Players)
		if err != nil {
			return nil, err
		}
		br.Efficiency = append(br.Efficiency, out.Efficiency()/opt)
		br.EnvyFreeness = append(br.EnvyFreeness, ef)
		br.MUR = append(br.MUR, out.MUR)
		br.MBR = append(br.MBR, out.MBR)
		br.EFBound = append(br.EFBound, out.EFBound())
		br.Iterations = append(br.Iterations, out.Iterations)
		br.Runs = append(br.Runs, out.EquilibriumRuns)
		br.Converged = append(br.Converged, out.Converged)
	}
	return br, nil
}

// mechIndex locates a mechanism column.
func (s *SweepResult) mechIndex(name string) int {
	for i, m := range s.Mechanisms {
		if m == name {
			return i
		}
	}
	return -1
}

// Column extracts one mechanism's series across bundles.
func (s *SweepResult) Column(name string, f func(BundleResult, int) float64) []float64 {
	mi := s.mechIndex(name)
	if mi < 0 {
		return nil
	}
	out := make([]float64, len(s.Bundles))
	for i, b := range s.Bundles {
		out[i] = f(b, mi)
	}
	return out
}

// EfficiencyColumn returns normalised efficiencies for one mechanism.
func (s *SweepResult) EfficiencyColumn(name string) []float64 {
	return s.Column(name, func(b BundleResult, mi int) float64 { return b.Efficiency[mi] })
}

// EnvyColumn returns envy-freeness values for one mechanism.
func (s *SweepResult) EnvyColumn(name string) []float64 {
	return s.Column(name, func(b BundleResult, mi int) float64 { return b.EnvyFreeness[mi] })
}

// FractionAtLeast reports the fraction of xs at or above the threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary holds the headline §6.1/§6.2 statistics.
type Summary struct {
	Mechanism      string
	MedianEff      float64
	MinEff         float64
	FracEff95      float64 // fraction of bundles ≥ 95% of MaxEfficiency
	FracEff90      float64
	MedianEF       float64
	WorstEF        float64
	BoundViolation int // bundles whose EF fell below the Theorem 2 bound
	P95Iterations  float64
	MeanRuns       float64
}

// Summarize computes the per-mechanism headline statistics.
func (s *SweepResult) Summarize() []Summary {
	var out []Summary
	for mi, name := range s.Mechanisms {
		var eff, efs, iters, runs []float64
		violations := 0
		for _, b := range s.Bundles {
			eff = append(eff, b.Efficiency[mi])
			efs = append(efs, b.EnvyFreeness[mi])
			iters = append(iters, float64(b.Iterations[mi]))
			runs = append(runs, float64(b.Runs[mi]))
			if !math.IsNaN(b.EFBound[mi]) && b.EnvyFreeness[mi] < b.EFBound[mi]-1e-9 {
				violations++
			}
		}
		out = append(out, Summary{
			Mechanism:      name,
			MedianEff:      numeric.Median(eff),
			MinEff:         numeric.Min(eff),
			FracEff95:      FractionAtLeast(eff, 0.95),
			FracEff90:      FractionAtLeast(eff, 0.90),
			MedianEF:       numeric.Median(efs),
			WorstEF:        numeric.Min(efs),
			BoundViolation: violations,
			P95Iterations:  numeric.Percentile(iters, 95),
			MeanRuns:       numeric.Mean(runs),
		})
	}
	return out
}

// RenderFig4 prints the Figure 4 rows (both panels), bundles ordered by
// EqualShare efficiency as in the paper, followed by the summary table.
func RenderFig4(w io.Writer, s *SweepResult) {
	order := make([]int, len(s.Bundles))
	for i := range order {
		order[i] = i
	}
	esIdx := s.mechIndex("EqualShare")
	if esIdx >= 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return s.Bundles[order[a]].Efficiency[esIdx] < s.Bundles[order[b]].Efficiency[esIdx]
		})
	}
	fmt.Fprintf(w, "# Figure 4: %d-core efficiency and envy-freeness, %d bundles\n", s.Cores, len(s.Bundles))
	fmt.Fprintln(w, "# efficiency normalised to MaxEfficiency; bundles ordered by EqualShare efficiency")

	fmt.Fprintf(w, "\n## (a) efficiency\n%6s %6s", "bundle", "cat")
	for _, m := range s.Mechanisms {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for rank, bi := range order {
		b := s.Bundles[bi]
		fmt.Fprintf(w, "%6d %6s", rank, b.Bundle.Category)
		for mi := range s.Mechanisms {
			fmt.Fprintf(w, " %12.3f", b.Efficiency[mi])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n## (b) envy-freeness\n%6s %6s", "bundle", "cat")
	for _, m := range s.Mechanisms {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintf(w, " %12s\n", "MaxEff")
	for rank, bi := range order {
		b := s.Bundles[bi]
		fmt.Fprintf(w, "%6d %6s", rank, b.Bundle.Category)
		for mi := range s.Mechanisms {
			fmt.Fprintf(w, " %12.3f", b.EnvyFreeness[mi])
		}
		fmt.Fprintf(w, " %12.3f\n", b.MaxEffEF)
	}

	RenderSummary(w, s)
}

// RenderSummary prints the §6.1/§6.2 headline statistics.
func RenderSummary(w io.Writer, s *SweepResult) {
	fmt.Fprintf(w, "\n## summary (%d bundles)\n", len(s.Bundles))
	fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %8s %8s %6s %8s %8s\n",
		"mechanism", "medEff", "minEff", "≥95%", "≥90%", "medEF", "worstEF", "viol", "p95iter", "runs")
	for _, sum := range s.Summarize() {
		fmt.Fprintf(w, "%-14s %8.3f %8.3f %7.0f%% %7.0f%% %8.3f %8.3f %6d %8.1f %8.1f\n",
			sum.Mechanism, sum.MedianEff, sum.MinEff, sum.FracEff95*100, sum.FracEff90*100,
			sum.MedianEF, sum.WorstEF, sum.BoundViolation, sum.P95Iterations, sum.MeanRuns)
	}
	// MaxEfficiency fairness reference (§6.2: "typically 0.35").
	var maxEFs []float64
	for _, b := range s.Bundles {
		maxEFs = append(maxEFs, b.MaxEffEF)
	}
	if len(maxEFs) > 0 {
		fmt.Fprintf(w, "%-14s %8s %8s %8s %8s %8.3f %8.3f\n",
			"MaxEfficiency", "1.000", "1.000", "-", "-", numeric.Median(maxEFs), numeric.Min(maxEFs))
	}
}

// RenderConvergence prints the §6.4 convergence study from sweep data.
func RenderConvergence(w io.Writer, s *SweepResult) {
	fmt.Fprintln(w, "# §6.4 convergence: bidding–pricing iterations per mechanism")
	fmt.Fprintf(w, "%-14s %8s %8s %8s %10s %10s\n",
		"mechanism", "median", "p95", "max", "conv-rate", "runs(avg)")
	for mi, name := range s.Mechanisms {
		var iters, runs []float64
		conv := 0
		for _, b := range s.Bundles {
			iters = append(iters, float64(b.Iterations[mi]))
			runs = append(runs, float64(b.Runs[mi]))
			if b.Converged[mi] {
				conv++
			}
		}
		if name == "EqualShare" {
			continue // no market
		}
		fmt.Fprintf(w, "%-14s %8.1f %8.1f %8.0f %9.0f%% %10.1f\n",
			name, numeric.Median(iters), numeric.Percentile(iters, 95), numeric.Max(iters),
			float64(conv)/float64(len(s.Bundles))*100, numeric.Mean(runs))
	}
}
