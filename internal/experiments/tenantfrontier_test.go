package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The acceptance criteria for the tenant economy, measured where the paper
// measures: on the frontier sweep. Lending must never serve less than the
// static-quota control on the same trace, must measurably raise fleet
// efficiency in aggregate, and must hold every demanding tenant at or above
// its MBR floor while doing so.
func TestTenantFrontierLendingBeatsStatic(t *testing.T) {
	r, err := RunTenantFrontier(9, 240, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points)%2 != 0 || len(r.Points) == 0 {
		t.Fatalf("points come in static/lending pairs, got %d", len(r.Points))
	}
	var sumStatic, sumLending float64
	for i := 0; i < len(r.Points); i += 2 {
		s, l := r.Points[i], r.Points[i+1]
		if s.Lending || !l.Lending || s.Floor != l.Floor {
			t.Fatalf("pair %d malformed: %+v / %+v", i/2, s, l)
		}
		if l.Efficiency < s.Efficiency-1e-9 {
			t.Errorf("floor %.2f: lending efficiency %.4f below static %.4f",
				s.Floor, l.Efficiency, s.Efficiency)
		}
		if l.MinFairness < s.Floor-1e-6 {
			t.Errorf("floor %.2f: lending min fairness %.4f violates the MBR floor",
				s.Floor, l.MinFairness)
		}
		if s.MinFairness < 1-1e-9 {
			t.Errorf("floor %.2f: static quotas should be perfectly fair, got %.4f",
				s.Floor, s.MinFairness)
		}
		if s.LentTotal != 0 || s.ReclaimedTotal != 0 {
			t.Errorf("floor %.2f: static run moved budget (lent %.1f, reclaimed %.1f)",
				s.Floor, s.LentTotal, s.ReclaimedTotal)
		}
		if l.LentTotal <= 0 {
			t.Errorf("floor %.2f: lending run never lent", s.Floor)
		}
		sumStatic += s.Efficiency
		sumLending += l.Efficiency
	}
	// "Measurably" raises efficiency: >2% relative in aggregate, the same
	// bar the tenant package's property tests hold random trees to.
	if sumLending < sumStatic*1.02 {
		t.Fatalf("lending efficiency %.4f not measurably above static %.4f",
			sumLending, sumStatic)
	}
}

func TestTenantFrontierDeterministic(t *testing.T) {
	a, err := RunTenantFrontier(6, 100, 7, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenantFrontier(6, 100, 7, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different frontiers")
	}
	if _, err := RunTenantFrontier(2, 100, 7, nil); err == nil {
		t.Fatal("want error for < 3 tenants")
	}
	if _, err := RunTenantFrontier(6, 0, 7, nil); err == nil {
		t.Fatal("want error for 0 epochs")
	}
}

func TestRenderTenantFrontier(t *testing.T) {
	r, err := RunTenantFrontier(3, 40, 1, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTenantFrontier(&sb, r)
	out := sb.String()
	for _, needle := range []string{"Tenant economy frontier", "static", "lending", "efficiency"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q:\n%s", needle, out)
		}
	}
	var csb strings.Builder
	if err := WriteTenantFrontierCSV(&csb, r); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(csb.String()), "\n"); lines != len(r.Points) {
		t.Fatalf("CSV rows %d, want %d points", lines, len(r.Points))
	}
}
