package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

// Fig5Bundle is one detailed-simulation bundle across mechanisms.
type Fig5Bundle struct {
	Category workload.Category
	// Per mechanism (aligned with Fig5Result.Mechanisms): weighted
	// speedup normalised to MaxEfficiency's simulated speedup, and
	// envy-freeness of the final allocation.
	Efficiency     []float64
	EnvyFreeness   []float64
	MeanIterations []float64
	// MaxEffEF is the envy-freeness of the MaxEfficiency reference run.
	MaxEffEF float64
}

// Fig5Result is the §6.3 dataset: one random bundle per category run in the
// detailed execution-driven simulator under every mechanism (utilities
// monitored online with UMON, Talus applied physically).
type Fig5Result struct {
	Cores      int
	Mechanisms []string
	Bundles    []Fig5Bundle
}

// RunFig5 executes the detailed-simulation comparison. cfg sizes each run;
// one bundle per category is drawn from seed.
func RunFig5(cfg cmpsim.Config, seed uint64, mechs []core.Allocator) (*Fig5Result, error) {
	return Engine{}.RunFig5(cfg, seed, mechs)
}

// RunFig5 is the engine-scheduled detailed simulation: one cell per
// (bundle, mechanism) chip plus one MaxEfficiency reference per bundle.
// Every cell writes a disjoint slot, so the fan-out needs no locking and
// the assembled result is independent of worker count and completion order.
func (e Engine) RunFig5(cfg cmpsim.Config, seed uint64, mechs []core.Allocator) (*Fig5Result, error) {
	if mechs == nil {
		mechs = DefaultMechanisms()
	}
	rng := numeric.NewRand(seed)
	res := &Fig5Result{Cores: cfg.Cores}
	for _, m := range mechs {
		res.Mechanisms = append(res.Mechanisms, m.Name())
	}

	type job struct {
		bi, mi int
		alloc  core.Allocator
		bundle workload.Bundle
	}
	var jobs []job
	res.Bundles = make([]Fig5Bundle, len(workload.Categories()))
	maxSpeedup := make([]float64, len(workload.Categories()))
	for bi, cat := range workload.Categories() {
		b, err := workload.Generate(cat, cfg.Cores, rng)
		if err != nil {
			return nil, err
		}
		res.Bundles[bi] = Fig5Bundle{
			Category:       cat,
			Efficiency:     make([]float64, len(mechs)),
			EnvyFreeness:   make([]float64, len(mechs)),
			MeanIterations: make([]float64, len(mechs)),
		}
		for mi, m := range mechs {
			jobs = append(jobs, job{bi: bi, mi: mi, alloc: m, bundle: b})
		}
		// The MaxEfficiency reference run.
		jobs = append(jobs, job{bi: bi, mi: -1, alloc: core.MaxEfficiency{}, bundle: b})
	}

	err := e.forEach(len(jobs), func(ji int) error {
		j := jobs[ji]
		chip, err := cmpsim.NewChip(cfg, j.bundle)
		if err == nil {
			var r *cmpsim.Result
			r, err = chip.Run(j.alloc)
			if err == nil {
				if j.mi < 0 {
					maxSpeedup[j.bi] = r.WeightedSpeedup
					res.Bundles[j.bi].MaxEffEF = r.EnvyFreeness
				} else {
					res.Bundles[j.bi].Efficiency[j.mi] = r.WeightedSpeedup
					res.Bundles[j.bi].EnvyFreeness[j.mi] = r.EnvyFreeness
					res.Bundles[j.bi].MeanIterations[j.mi] = r.MeanIterations
				}
			}
		}
		if err != nil {
			return fmt.Errorf("fig5 %s/%s: %w", j.bundle.Category, j.alloc.Name(), err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi := range res.Bundles {
		if maxSpeedup[bi] <= 0 {
			return nil, fmt.Errorf("fig5: missing MaxEfficiency reference for bundle %d", bi)
		}
		for mi := range res.Mechanisms {
			res.Bundles[bi].Efficiency[mi] /= maxSpeedup[bi]
		}
	}
	return res, nil
}

// RenderFig5 prints the two panels.
func RenderFig5(w io.Writer, r *Fig5Result) {
	fmt.Fprintf(w, "# Figure 5: %d-core detailed simulation (one bundle per category)\n", r.Cores)
	fmt.Fprintf(w, "\n## (a) efficiency (weighted speedup, normalised to MaxEfficiency)\n%8s", "bundle")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, b := range r.Bundles {
		fmt.Fprintf(w, "%8s", b.Category)
		for mi := range r.Mechanisms {
			fmt.Fprintf(w, " %12.3f", b.Efficiency[mi])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n## (b) envy-freeness\n%8s", "bundle")
	for _, m := range r.Mechanisms {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintf(w, " %12s\n", "MaxEff")
	for _, b := range r.Bundles {
		fmt.Fprintf(w, "%8s", b.Category)
		for mi := range r.Mechanisms {
			fmt.Fprintf(w, " %12.3f", b.EnvyFreeness[mi])
		}
		fmt.Fprintf(w, " %12.3f\n", b.MaxEffEF)
	}
}
