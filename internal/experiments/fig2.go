package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/app"
	"rebudget/internal/numeric"
)

// Fig2Curve is one application's normalised cache utility at maximum
// frequency: the raw profiled points and the Talus convex hull (Figure 2).
type Fig2Curve struct {
	App  string
	Raw  []numeric.Point // x = cache regions, y = normalised utility
	Hull []numeric.Point
}

// Fig2 profiles the two representative applications from the paper.
func Fig2() ([]Fig2Curve, error) {
	var out []Fig2Curve
	for _, name := range []string{"mcf", "vpr"} {
		spec, err := app.Lookup(name)
		if err != nil {
			return nil, err
		}
		m := app.NewModel(spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			return nil, err
		}
		u, err := app.NewUtility(m, curve)
		if err != nil {
			return nil, err
		}
		raw, hull := u.CacheUtilityCurve()
		out = append(out, Fig2Curve{App: name, Raw: raw, Hull: hull})
	}
	return out, nil
}

// RenderFig2 prints both curves side by side.
func RenderFig2(w io.Writer, curves []Fig2Curve) {
	fmt.Fprintln(w, "# Figure 2: normalised utility vs cache regions at max frequency")
	fmt.Fprintln(w, "# (markers = profiled utility; hull = Talus convexification)")
	for _, c := range curves {
		fmt.Fprintf(w, "\n## %s\n%8s  %10s  %10s\n", c.App, "regions", "raw", "talus")
		for i := range c.Raw {
			fmt.Fprintf(w, "%8.0f  %10.4f  %10.4f\n", c.Raw[i].X, c.Raw[i].Y, c.Hull[i].Y)
		}
	}
}
