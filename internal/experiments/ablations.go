package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/workload"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Config       string
	Efficiency   float64 // normalised to MaxEfficiency on hull utilities
	EnvyFreeness float64
	MUR          float64
	MBR          float64
	Iterations   int
	Runs         int
	Converged    bool
}

func ablationRow(name string, setup *workload.Setup, opt float64, alloc core.Allocator,
	players []core.PlayerSpec) (AblationRow, error) {
	out, err := alloc.Allocate(setup.Capacity, players)
	if err != nil {
		return AblationRow{}, err
	}
	ef, err := out.EnvyFreeness(players)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Config:       name,
		Efficiency:   out.Efficiency() / opt,
		EnvyFreeness: ef,
		MUR:          out.MUR,
		MBR:          out.MBR,
		Iterations:   out.Iterations,
		Runs:         out.EquilibriumRuns,
		Converged:    out.Converged,
	}, nil
}

func fig3Setup() (*workload.Setup, float64, error) {
	bundle, err := workload.Figure3Bundle()
	if err != nil {
		return nil, 0, err
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		return nil, 0, err
	}
	maxEff, err := (core.MaxEfficiency{}).Allocate(setup.Capacity, setup.Players)
	if err != nil {
		return nil, 0, err
	}
	return setup, maxEff.Efficiency(), nil
}

// AblationTalus compares an EqualBudget market on Talus-convexified
// utilities against the same market on raw (cliffy) utilities — the design
// choice of §4.1.1.
func AblationTalus() ([]AblationRow, error) {
	setup, opt, err := fig3Setup()
	if err != nil {
		return nil, err
	}
	rows := []AblationRow{}
	hullRow, err := ablationRow("talus-hull", setup, opt, core.EqualBudget{}, setup.Players)
	if err != nil {
		return nil, err
	}
	rows = append(rows, hullRow)

	// Rebuild the same players over raw utilities.
	rawPlayers := make([]core.PlayerSpec, len(setup.Players))
	for i, m := range setup.Models {
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			return nil, err
		}
		u, err := app.NewRawUtility(m, curve)
		if err != nil {
			return nil, err
		}
		rawPlayers[i] = core.PlayerSpec{
			Name:     setup.Players[i].Name,
			Utility:  u,
			MaxAlloc: u.MaxUsefulAlloc(),
			MinAlloc: u.MinAlloc(),
		}
	}
	// Judge the raw market's allocation by the convexified utilities so
	// both rows share one yardstick (Talus is physically realisable, so
	// the hull utility is what the hardware would deliver).
	rawOut, err := (core.EqualBudget{}).Allocate(setup.Capacity, rawPlayers)
	if err != nil {
		return nil, err
	}
	eff := 0.0
	for i, alloc := range rawOut.Allocations {
		eff += setup.Players[i].Utility.Value(alloc)
	}
	ef, err := rawOut.EnvyFreeness(setup.Players)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Config:       "raw-cliffs",
		Efficiency:   eff / opt,
		EnvyFreeness: ef,
		MUR:          rawOut.MUR,
		MBR:          rawOut.MBR,
		Iterations:   rawOut.Iterations,
		Runs:         rawOut.EquilibriumRuns,
		Converged:    rawOut.Converged,
	})
	return rows, nil
}

// AblationLambdaThreshold sweeps ReBudget's "low-λ" cut threshold around
// the paper's 0.5 (§4.2).
func AblationLambdaThreshold() ([]AblationRow, error) {
	setup, opt, err := fig3Setup()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, th := range []float64{0.25, 0.5, 0.75, 0.9} {
		r, err := ablationRow(fmt.Sprintf("lambda<%.2f·max", th), setup, opt,
			core.ReBudget{Step: 20, LambdaThreshold: th}, setup.Players)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// AblationBackoff compares the paper's exponential back-off against a
// fixed-step variant with the same fairness floor.
func AblationBackoff() ([]AblationRow, error) {
	setup, opt, err := fig3Setup()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	expo, err := ablationRow("exponential-backoff", setup, opt,
		core.ReBudget{Step: 20}, setup.Players)
	if err != nil {
		return nil, err
	}
	rows = append(rows, expo)
	fixed, err := ablationRow("fixed-step", setup, opt,
		core.ReBudget{Step: 20, MBRFloor: 0.6125, NoBackoff: true}, setup.Players)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fixed)
	return rows, nil
}

// AblationBidOptimizer varies the player-local hill climb's stopping
// granularity (§4.1.2's 1% shift floor) to show the precision/cost
// trade-off of the bidding strategy.
func AblationBidOptimizer() ([]AblationRow, error) {
	setup, opt, err := fig3Setup()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, frac := range []float64{0.10, 0.01, 0.001} {
		cfg := market.DefaultConfig()
		cfg.MinShiftFraction = frac
		r, err := ablationRow(fmt.Sprintf("min-shift=%g%%", frac*100), setup, opt,
			core.EqualBudget{Market: cfg}, setup.Players)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	// The water-filling reference: near-exact per-player optimisation at
	// ~10× the utility evaluations. §4.1.2's cheap hill climb should sit
	// within a whisker of it.
	greedy := market.DefaultConfig()
	greedy.Optimizer = market.GreedyExact
	greedy.GreedyQuanta = 200
	r, err := ablationRow("greedy-exact (ref)", setup, opt,
		core.EqualBudget{Market: greedy}, setup.Players)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// RenderAblation prints one ablation table.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "# ablation: %s\n", title)
	fmt.Fprintf(w, "%-22s %8s %8s %8s %8s %6s %5s %5s\n",
		"config", "eff", "EF", "MUR", "MBR", "iters", "runs", "conv")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8.3f %8.3f %8.3f %8.3f %6d %5d %5v\n",
			r.Config, r.Efficiency, r.EnvyFreeness, r.MUR, r.MBR, r.Iterations, r.Runs, r.Converged)
	}
}
