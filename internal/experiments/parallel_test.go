package experiments

import (
	"math"
	"reflect"
	"testing"

	"rebudget/internal/market"
)

// floatsBitEqual compares float slices by bit pattern: stricter than == for
// normal values, and well-defined for the NaN entries BundleResult uses to
// mark non-market mechanisms (NaN != NaN would make reflect.DeepEqual
// reject even two identical serial sweeps).
func floatsBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func bundlesBitEqual(t *testing.T, a, b BundleResult) bool {
	t.Helper()
	return reflect.DeepEqual(a.Bundle, b.Bundle) &&
		floatsBitEqual(a.Efficiency, b.Efficiency) &&
		floatsBitEqual(a.EnvyFreeness, b.EnvyFreeness) &&
		floatsBitEqual(a.MUR, b.MUR) &&
		floatsBitEqual(a.MBR, b.MBR) &&
		floatsBitEqual(a.EFBound, b.EFBound) &&
		reflect.DeepEqual(a.Iterations, b.Iterations) &&
		reflect.DeepEqual(a.Runs, b.Runs) &&
		reflect.DeepEqual(a.Converged, b.Converged) &&
		math.Float64bits(a.MaxEffEF) == math.Float64bits(b.MaxEffEF)
}

// TestSweepParallelDeterminism runs the same reduced sweep once with the
// equilibrium engine pinned serial and once fanned across eight workers.
// The whole point of the indexed-slot worker pool is that this is not a
// tolerance comparison: every bid, price, utility and iteration count in
// the SweepResult must be bit-identical.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	serial, err := RunSweep(8, 1, 7, InstrumentedMechanisms(func(mc market.Config) market.Config {
		mc.Workers = 1
		return mc
	}))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(8, 1, 7, InstrumentedMechanisms(func(mc market.Config) market.Config {
		mc.Workers = 8
		return mc
	}))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cores != parallel.Cores || !reflect.DeepEqual(serial.Mechanisms, parallel.Mechanisms) {
		t.Fatalf("sweep shape differs: %v vs %v", serial.Mechanisms, parallel.Mechanisms)
	}
	if len(serial.Bundles) != len(parallel.Bundles) {
		t.Fatalf("bundle count differs: %d vs %d", len(serial.Bundles), len(parallel.Bundles))
	}
	for bi := range serial.Bundles {
		if !bundlesBitEqual(t, serial.Bundles[bi], parallel.Bundles[bi]) {
			t.Errorf("bundle %d (%s): parallel sweep diverged from serial",
				bi, serial.Bundles[bi].Bundle.Category)
		}
	}
}
