package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/cmpsim"
)

// RenderTable1 prints the system configuration (Table 1) for the 8- and
// 64-core machines, as modelled by this reproduction. Core-internal
// parameters the allocation mechanisms never observe (issue width, ROB
// size, branch predictor, …) are folded into each application's CPIBase and
// listed for reference only.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: system configuration (modelled)")
	fmt.Fprintf(w, "%-34s %14s %14s\n", "parameter", "8-core", "64-core")
	c8, c64 := cmpsim.NewSystemConfig(8), cmpsim.NewSystemConfig(64)
	row := func(name string, a, b interface{}) {
		fmt.Fprintf(w, "%-34s %14v %14v\n", name, a, b)
	}
	row("Number of cores", c8.Cores, c64.Cores)
	row("Power budget (W)", c8.PowerBudgetW, c64.PowerBudgetW)
	row("Shared L2 capacity (MB)", c8.L2CapacityBytes>>20, c64.L2CapacityBytes>>20)
	row("Shared L2 associativity (ways)", c8.L2Ways, c64.L2Ways)
	row("Memory controller channels", c8.MemoryChannels, c64.MemoryChannels)
	row("Frequency (GHz)", fmt.Sprintf("%.1f-%.1f", c8.FreqMinGHz, c8.FreqMaxGHz),
		fmt.Sprintf("%.1f-%.1f", c64.FreqMinGHz, c64.FreqMaxGHz))
	row("Voltage (V)", fmt.Sprintf("%.1f-%.1f", c8.VoltMin, c8.VoltMax),
		fmt.Sprintf("%.1f-%.1f", c64.VoltMin, c64.VoltMax))
	row("Cache region granularity (kB)", c8.RegionBytes>>10, c64.RegionBytes>>10)
	row("UMON set-sampling rate", c8.UMONSampleRate, c64.UMONSampleRate)
	row("UMON stack-distance cap (regions)", c8.UMONMaxStackRegion, c64.UMONMaxStackRegion)
	fmt.Fprintln(w, "\n# core-internal parameters folded into per-application CPIBase:")
	fmt.Fprintln(w, "#   4-way OoO fetch/issue/commit, 128-entry ROB, 32-entry LSQs,")
	fmt.Fprintln(w, "#   tournament branch predictor, 32 kB split L1s (2/3-cycle)")
}
