package experiments

import (
	"strings"
	"testing"

	"rebudget/internal/cmpsim"
)

func TestRunResilience(t *testing.T) {
	cfg := cmpsim.DefaultConfig(4)
	cfg.WarmupEpochs = 4
	cfg.Epochs = 8
	res, err := RunResilience(cfg, 1, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatalf("fault-free baseline speedup %g", res.Baseline)
	}
	if res.MBRFloor <= 0 || res.MBRFloor > 1 {
		t.Fatalf("MBR floor %g", res.MBRFloor)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row.FaultRate != 0.10 {
		t.Errorf("FaultRate = %g", row.FaultRate)
	}
	// The acceptance bar: a 10% fault rate retains at least 80% of the
	// fault-free weighted speedup.
	if row.Retained < 0.8 {
		t.Errorf("retained efficiency %.3f below 0.8 at 10%% faults", row.Retained)
	}
	if !row.FloorOK {
		t.Errorf("MBR floor violated: min %.3f < %.3f", row.MinMBR, res.MBRFloor)
	}
	total := row.Faults.CurveFaults + row.Faults.UtilityFaults + row.Faults.SolverStalls
	if total == 0 {
		t.Error("sweep row reports zero injected faults")
	}

	var sb strings.Builder
	RenderResilience(&sb, res)
	out := sb.String()
	for _, want := range []string{"Resilience", "fault-free baseline", "retained", "minMBR", "0.10"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}
