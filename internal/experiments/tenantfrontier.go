package experiments

import (
	"fmt"
	"io"

	"rebudget/internal/numeric"
	"rebudget/internal/tenant"
)

// TenantFrontierPoint is one (floor, mode) cell of the tenant-economy
// frontier: fleet efficiency and worst-case tenant fairness for a demand
// trace replayed through the tenant budget tree.
type TenantFrontierPoint struct {
	Floor   float64 // per-tenant MBR floor the tree was run with
	Lending bool    // false = static quotas (the A/B control)
	// Efficiency is served demand over the best any allocation could serve:
	// sum over epochs of Σᵢ min(demandᵢ, grantedᵢ) / min(Σᵢ demandᵢ, capacity).
	Efficiency float64
	// MinFairness is the worst observed granted/min(demand, deserved) over
	// every (epoch, demanding tenant) — the tenant-level MBR analogue. The
	// floor theorem guarantees MinFairness ≥ Floor.
	MinFairness float64
	// LentTotal and ReclaimedTotal are the tree's cumulative flow counters.
	LentTotal      float64
	ReclaimedTotal float64
}

// TenantFrontierResult is the tenant-economy analogue of the paper's
// efficiency-vs-fairness frontier (Fig. 1 / §3, lifted from players on one
// chip to tenants on one fleet budget): sweeping the MBR floor trades how
// much idle budget the economy may lend against how hard a returning tenant
// can be squeezed meanwhile.
type TenantFrontierResult struct {
	Capacity float64
	Tenants  int
	Epochs   int
	Seed     uint64
	Points   []TenantFrontierPoint // two per floor: static first, lending second
}

// tenantTrace is one tenant's deterministic demand series, drawn from the
// same archetypes the load generator offers: steady tenants want slightly
// more than their quota all the time, bursty tenants alternate feast and
// famine, idle tenants barely show up — the donor pool lending feeds on.
type tenantTrace struct {
	name   string
	demand []float64
}

func genTenantTraces(n, epochs int, quota float64, rng *numeric.Rand) []tenantTrace {
	traces := make([]tenantTrace, n)
	for i := range traces {
		d := make([]float64, epochs)
		switch i % 3 {
		case 0: // steady: ~1.2x quota with mild noise
			for e := range d {
				d[e] = quota * (1.1 + 0.2*rng.Float64())
			}
		case 1: // bursty: ~8-epoch feast (2-3x quota) / famine cycles
			period := 6 + rng.Intn(5)
			phase := rng.Intn(period)
			for e := range d {
				if (e+phase)/period%2 == 0 {
					d[e] = quota * (2 + rng.Float64())
				}
			}
		default: // idle: a small blip every ~10 epochs
			for e := range d {
				if rng.Float64() < 0.1 {
					d[e] = quota * 0.2 * rng.Float64()
				}
			}
		}
		traces[i] = tenantTrace{name: fmt.Sprintf("t%02d", i), demand: d}
	}
	return traces
}

// RunTenantFrontier replays one deterministic multi-tenant demand trace
// through the tenant budget tree at each MBR floor, once with lending and
// once frozen at static quotas, and records where each run lands on the
// efficiency/fairness plane. The same seed always produces the same trace,
// so lending-vs-static deltas are paired, not sampled.
func RunTenantFrontier(tenants, epochs int, seed uint64, floors []float64) (*TenantFrontierResult, error) {
	if tenants < 3 {
		return nil, fmt.Errorf("tenant frontier: need >= 3 tenants for the archetype mix, got %d", tenants)
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("tenant frontier: epochs %d must be > 0", epochs)
	}
	if len(floors) == 0 {
		floors = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	}
	const capacity = 100.0
	quota := capacity / float64(tenants)
	traces := genTenantTraces(tenants, epochs, quota, numeric.NewRand(seed))

	res := &TenantFrontierResult{
		Capacity: capacity,
		Tenants:  tenants,
		Epochs:   epochs,
		Seed:     seed,
	}
	for _, floor := range floors {
		for _, lending := range []bool{false, true} {
			pt, err := runTenantTrace(traces, capacity, floor, lending)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

func runTenantTrace(traces []tenantTrace, capacity, floor float64, lending bool) (TenantFrontierPoint, error) {
	specs := make([]tenant.NodeSpec, len(traces))
	for i, tr := range traces {
		specs[i] = tenant.NodeSpec{Name: tr.name}
	}
	tree, err := tenant.New(specs, tenant.Config{
		Capacity:        capacity,
		DefaultMBRFloor: floor,
		DisableLending:  !lending,
	})
	if err != nil {
		return TenantFrontierPoint{}, err
	}
	pt := TenantFrontierPoint{Floor: floor, Lending: lending, MinFairness: 1}
	var served, best float64
	epochs := len(traces[0].demand)
	for e := 0; e < epochs; e++ {
		var offered float64
		for _, tr := range traces {
			if err := tree.SetDemand(tr.name, tr.demand[e]); err != nil {
				return TenantFrontierPoint{}, err
			}
			offered += tr.demand[e]
		}
		tree.Rebalance()
		for _, tr := range traces {
			d := tr.demand[e]
			if d <= 0 {
				continue
			}
			g := tree.Granted(tr.name)
			if g > d {
				g = d
			}
			served += g
			if entitled := min(d, tree.Deserved(tr.name)); entitled > 0 {
				if f := min(1, g/entitled); f < pt.MinFairness {
					pt.MinFairness = f
				}
			}
		}
		best += min(offered, capacity)
	}
	if best > 0 {
		pt.Efficiency = served / best
	}
	for _, st := range tree.StatusAll() {
		pt.LentTotal += st.LentTotal
		pt.ReclaimedTotal += st.ReclaimedTotal
	}
	return pt, nil
}

// RenderTenantFrontier prints the frontier beside Fig 5's chip-level table:
// one static/lending pair per floor, plus the lending efficiency gain.
func RenderTenantFrontier(w io.Writer, r *TenantFrontierResult) {
	fmt.Fprintf(w, "# Tenant economy frontier: %d tenants on %.0f cost units, %d epochs (seed %d)\n",
		r.Tenants, r.Capacity, r.Epochs, r.Seed)
	fmt.Fprintf(w, "%6s %8s %12s %13s %10s %11s\n",
		"floor", "mode", "efficiency", "min_fairness", "lent", "reclaimed")
	for i := 0; i < len(r.Points); i += 2 {
		s, l := r.Points[i], r.Points[i+1]
		fmt.Fprintf(w, "%6.2f %8s %12.4f %13.4f %10.1f %11.1f\n",
			s.Floor, "static", s.Efficiency, s.MinFairness, s.LentTotal, s.ReclaimedTotal)
		fmt.Fprintf(w, "%6.2f %8s %12.4f %13.4f %10.1f %11.1f  (+%.1f%% efficiency)\n",
			l.Floor, "lending", l.Efficiency, l.MinFairness, l.LentTotal, l.ReclaimedTotal,
			100*(l.Efficiency-s.Efficiency))
	}
}
