package experiments

// probe_test.go holds verbose diagnostics behind -v; it keeps exploratory
// output available without polluting normal test runs.

import (
	"testing"

	"rebudget/internal/core"
	"rebudget/internal/workload"
)

func TestProbeFig3Detail(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	bundle, err := workload.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := workload.NewSetup(bundle)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []core.Allocator{core.EqualBudget{}, core.ReBudget{Step: 20}} {
		out, err := a.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: MUR=%.3f MBR=%.3f eff=%.3f conv=%v runs=%d",
			a.Name(), out.MUR, out.MBR, out.Efficiency(), out.Converged, out.EquilibriumRuns)
		for i, p := range setup.Players {
			t.Logf("  %-12s B=%6.2f λ=%8.5f u=%.3f alloc=[%6.2f %6.2f]",
				p.Name, out.Budgets[i], out.Lambdas[i], out.Utilities[i],
				out.Allocations[i][0], out.Allocations[i][1])
		}
	}
}
