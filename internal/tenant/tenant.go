// Package tenant is the hierarchical budget economy on top of the core
// market: a quota tree (root → tenant → sub-tenant) over the session
// population, where each node carries a *deserved* budget share, an
// over-quota weight, and a fairness floor. An epoch-driven rebalancer
// (Rebalance) lends idle tenants' unused budget to over-quota tenants by
// weight, and reclaims it with ReBudget-style bounded per-epoch cuts
// (core.CutSchedule — the §4.2 step/minStep machinery, reused, not
// duplicated) when the lender's demand returns.
//
// This is the paper's budget-reassignment machinery lifted one level up:
// ReBudget moves budget between players on one chip; the tenant tree moves
// it between tenants across the fleet. The Theorem 2 analogue holds at this
// level too — a demanding tenant's granted budget never drops below its
// MBR floor of its slice, instantly, while the full deserved share is
// restored within a bounded number of epochs (the halving schedule's
// length). internal/tenant/property_test.go proves both over randomized
// trees and demand traces; DESIGN.md "Tenant economy" states the argument.
//
// Budget units are deliberately abstract. The serving tier instantiates
// them as dispatcher cost units (concurrent admission budget), the
// experiments sweep as generic capacity.
package tenant

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"

	"rebudget/internal/core"
)

// NodeSpec declares one tenant in the configured tree. Names are path
// segments; the tree addresses nodes by their full slash-joined path
// (e.g. "acme/prod").
type NodeSpec struct {
	// Name is the path segment ([A-Za-z0-9_-], ≤64 chars).
	Name string `json:"name"`
	// Share is the node's deserved weight among its siblings (default 1):
	// the node's deserved budget is its parent's, split by share.
	Share float64 `json:"share,omitempty"`
	// OverQuotaWeight sets how aggressively the node receives lent budget
	// when it demands beyond its slice (default 1; 0 keeps the default).
	OverQuotaWeight float64 `json:"over_quota_weight,omitempty"`
	// MBRFloor is the fairness floor: the lowest admissible ratio of the
	// node's granted budget to its slice while it demands at least that
	// much — the tenant-level analogue of ReBudget's MBRFloor. 0 selects
	// the tree default.
	MBRFloor float64 `json:"mbr_floor,omitempty"`
	// Children are sub-tenants; a node with children cannot host demand
	// itself (sessions attach to leaves).
	Children []NodeSpec `json:"children,omitempty"`
}

// Config tunes the tree's rebalancer. Zero values select the documented
// defaults.
type Config struct {
	// Capacity is the root budget the tree divides (required, > 0).
	Capacity float64
	// DefaultMBRFloor applies to nodes that don't set their own (default
	// 0.25, in (0, 1]).
	DefaultMBRFloor float64
	// MinStepFraction terminates a reclaim cycle's back-off once its step
	// drops below this fraction of the tenant's deserved budget (default
	// 0.01 — ReBudget's §4.2 threshold); the residual is then snapped, so
	// reclaim completes instead of decaying forever.
	MinStepFraction float64
	// NoBackoff disables the exponential halving inside reclaim cycles
	// (ablation only), mirroring core.ReBudget.NoBackoff.
	NoBackoff bool
	// DisableLending turns the tree into static per-tenant quotas — each
	// tenant gets min(demand, slice), idle headroom is never lent. The
	// experiments sweep uses it as the efficiency baseline.
	DisableLending bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity <= 0 {
		return c, fmt.Errorf("tenant: capacity %g must be > 0", c.Capacity)
	}
	if c.DefaultMBRFloor == 0 {
		c.DefaultMBRFloor = 0.25
	}
	if c.DefaultMBRFloor < 0 || c.DefaultMBRFloor > 1 {
		return c, fmt.Errorf("tenant: default MBR floor %g outside (0,1]", c.DefaultMBRFloor)
	}
	if c.MinStepFraction <= 0 {
		c.MinStepFraction = 0.01
	}
	return c, nil
}

var segPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// node is one tenant in the tree. All fields are guarded by the Tree mutex.
type node struct {
	path     string // full slash-joined path; the tree-wide key
	share    float64
	oqWeight float64
	floor    float64

	parent   *node
	children []*node

	demand float64 // leaf-set demand (budget units wanted)
	agg    float64 // aggregate demand this epoch (own + subtree)

	deserved float64 // entitlement: capacity × share fractions down the tree
	slice    float64 // this epoch's share of what the parent actually holds
	target   float64 // this epoch's post-lending entitlement
	granted  float64 // what the tenant may use now (bounded movement state)

	// Reclaim cycle: a core.CutSchedule opened when granted must shrink
	// toward target, sized §4.2-style at half the gap so the halving series
	// covers it; sizedGap remembers what it was opened for so a widened gap
	// re-arms the schedule.
	sched    *core.CutSchedule
	sizedGap float64

	// Cumulative flow counters (monotonic, for Prometheus).
	lentTotal      float64 // budget-epochs this node's granted sat below deserved
	reclaimedTotal float64 // budget actually cut back from this node
}

// Tree is the tenant budget economy. Safe for concurrent use; Rebalance is
// the only mutator of budget state, demand arrives via SetDemand.
type Tree struct {
	mu     sync.Mutex
	cfg    Config
	root   *node
	byPath map[string]*node
	epochs int64
}

// New builds a tree from the root's children (the root itself is implicit:
// it holds Capacity and is named ""). An empty spec list is valid — tenants
// can be added later with Ensure.
func New(tenants []NodeSpec, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		root:   &node{path: "", share: 1, oqWeight: 1, floor: cfg.DefaultMBRFloor},
		byPath: map[string]*node{},
	}
	t.root.granted = cfg.Capacity
	for _, spec := range tenants {
		if err := t.addSpec(t.root, spec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// addSpec attaches spec (and its children) under parent. Caller holds no
// lock yet (construction) or the tree lock (Ensure).
func (t *Tree) addSpec(parent *node, spec NodeSpec) error {
	if !segPattern.MatchString(spec.Name) {
		return fmt.Errorf("tenant: name %q must match %s", spec.Name, segPattern)
	}
	path := spec.Name
	if parent.path != "" {
		path = parent.path + "/" + spec.Name
	}
	if _, dup := t.byPath[path]; dup {
		return fmt.Errorf("tenant: duplicate tenant %q", path)
	}
	if spec.Share < 0 {
		return fmt.Errorf("tenant %q: share %g must be >= 0", path, spec.Share)
	}
	if spec.OverQuotaWeight < 0 {
		return fmt.Errorf("tenant %q: over-quota weight %g must be >= 0", path, spec.OverQuotaWeight)
	}
	if spec.MBRFloor < 0 || spec.MBRFloor > 1 {
		return fmt.Errorf("tenant %q: MBR floor %g outside [0,1]", path, spec.MBRFloor)
	}
	n := &node{
		path:     path,
		share:    spec.Share,
		oqWeight: spec.OverQuotaWeight,
		floor:    spec.MBRFloor,
		parent:   parent,
	}
	if n.share == 0 {
		n.share = 1
	}
	if n.oqWeight == 0 {
		n.oqWeight = 1
	}
	if n.floor == 0 {
		n.floor = t.cfg.DefaultMBRFloor
	}
	parent.children = append(parent.children, n)
	// A leaf promoted to an internal node aggregates its children's demand
	// from now on; its own leaf demand (no longer settable) is dropped.
	parent.demand = 0
	t.byPath[path] = n
	for _, child := range spec.Children {
		if err := t.addSpec(n, child); err != nil {
			return err
		}
	}
	return nil
}

// Ensure registers path (creating intermediate nodes with default share,
// weight and floor) and returns whether it created anything. Unknown
// tenants arriving with live traffic self-register this way, so a tenant
// mix needs no up-front configuration — exactly how the serving tier
// admits a fresh tenant label.
func (t *Tree) Ensure(path string) (created bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if path == "" {
		return false, fmt.Errorf("tenant: empty tenant path")
	}
	if n, ok := t.byPath[path]; ok {
		if len(n.children) > 0 {
			return false, fmt.Errorf("tenant %q is not a leaf", path)
		}
		return false, nil
	}
	cur := t.root
	prefix := ""
	for _, seg := range strings.Split(path, "/") {
		if prefix == "" {
			prefix = seg
		} else {
			prefix = prefix + "/" + seg
		}
		next, ok := t.byPath[prefix]
		if !ok {
			if err := t.addSpec(cur, NodeSpec{Name: seg}); err != nil {
				return created, err
			}
			next = t.byPath[prefix]
			created = true
		}
		cur = next
	}
	return created, nil
}

// SetDemand records a leaf tenant's current demand (budget units wanted).
// Demand on an internal node is refused: sessions attach to leaves, and the
// tree aggregates upward itself.
func (t *Tree) SetDemand(path string, demand float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byPath[path]
	if !ok {
		return fmt.Errorf("tenant: unknown tenant %q", path)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("tenant %q is not a leaf", path)
	}
	if demand < 0 {
		demand = 0
	}
	n.demand = demand
	return nil
}

// Granted reports what path may use right now (0 for unknown tenants).
func (t *Tree) Granted(path string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.byPath[path]; ok {
		return n.granted
	}
	return 0
}

// Deserved reports path's static entitlement as of the last Rebalance.
func (t *Tree) Deserved(path string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n, ok := t.byPath[path]; ok {
		return n.deserved
	}
	return 0
}

// EffectiveMBRFloor resolves the fairness floor the tree guarantees path —
// the tenant-level analogue of core.ReBudget.EffectiveMBRFloor. While the
// tenant demands at least floor × slice, its granted budget never drops
// below that, on any epoch, lending or not.
func (t *Tree) EffectiveMBRFloor(path string) (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.byPath[path]
	if !ok {
		return 0, fmt.Errorf("tenant: unknown tenant %q", path)
	}
	return n.floor, nil
}

// Capacity reports the root budget.
func (t *Tree) Capacity() float64 { return t.cfg.Capacity }

// Epochs reports how many Rebalance epochs have run.
func (t *Tree) Epochs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epochs
}

// Tenants lists the registered tenant paths, sorted.
func (t *Tree) Tenants() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.byPath))
	for p := range t.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Status is one tenant's externally visible state, as of the last
// Rebalance. Lent and Borrowed are the two signs of granted − deserved;
// the cumulative totals are monotonic counters for Prometheus.
type Status struct {
	Path            string
	Leaf            bool
	Share           float64
	OverQuotaWeight float64
	MBRFloor        float64
	Demand          float64 // aggregate (own + subtree)
	Deserved        float64
	Slice           float64 // this epoch's share of the parent's actual grant
	Granted         float64
	Lent            float64 // max(0, deserved − granted)
	Borrowed        float64 // max(0, granted − deserved)
	Reclaiming      bool    // a bounded-cut cycle is currently open
	LentTotal       float64
	ReclaimedTotal  float64
}

// StatusAll reports every tenant's state, sorted by path — the metrics
// rendering order.
func (t *Tree) StatusAll() []Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	paths := make([]string, 0, len(t.byPath))
	for p := range t.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]Status, 0, len(paths))
	for _, p := range paths {
		n := t.byPath[p]
		s := Status{
			Path:            n.path,
			Leaf:            len(n.children) == 0,
			Share:           n.share,
			OverQuotaWeight: n.oqWeight,
			MBRFloor:        n.floor,
			Demand:          n.agg,
			Deserved:        n.deserved,
			Slice:           n.slice,
			Granted:         n.granted,
			Reclaiming:      n.sched != nil,
			LentTotal:       n.lentTotal,
			ReclaimedTotal:  n.reclaimedTotal,
		}
		if d := n.deserved - n.granted; d > 0 {
			s.Lent = d
		} else {
			s.Borrowed = -d
		}
		out = append(out, s)
	}
	return out
}
