package tenant

import "rebudget/internal/core"

const eps = 1e-9

// Report summarises one Rebalance epoch. Lent and Reclaimed count leaf
// tenants only, so nested trees don't double-count a parent and its
// children for the same budget.
type Report struct {
	// Epoch is the rebalance counter after this call.
	Epoch int64
	// Lent is Σ max(0, deserved − granted) over leaves after this epoch —
	// the budget currently working for someone other than its owner.
	Lent float64
	// Reclaimed is the budget actually cut back from leaves this epoch.
	Reclaimed float64
}

// Rebalance runs one tenant-economy epoch:
//
//  1. Demand aggregates bottom-up; entitlements (deserved) split
//     top-down by share.
//  2. Per sibling group, targets are water-filled from the parent's
//     actual grant: every child first gets min(demand, slice); the idle
//     headroom is lent to over-slice demand by over-quota weight; what
//     nobody wants is parked back on its owners so an idle tenant keeps
//     its slice until someone needs it (no churn, no phantom "lending").
//  3. Granted moves toward target with bounded steps: raises are
//     immediate but only spend budget the same epoch freed; cuts follow a
//     core.CutSchedule opened at half the gap (ReBudget §4.2 — halving
//     back-off, terminate below MinStepFraction of the tenant's deserved
//     budget, then snap the residual so reclaim completes). The MBR floor
//     is restored unconditionally: a demanding tenant is raised to
//     floor × slice the same epoch, funded beyond the schedule from
//     cutters' remaining headroom — always feasible because every
//     guarantee is ≤ its target and Σ targets ≤ the parent's grant.
//
// The invariants the property tests pin: Σ sibling grants never exceeds
// the parent's grant, and every tenant's grant is ≥ min(demand,
// floor × slice) on every epoch — the tenant-level Theorem 2.
func (t *Tree) Rebalance() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epochs++
	rep := Report{Epoch: t.epochs}
	t.aggregate(t.root)
	t.root.deserved = t.cfg.Capacity
	t.root.slice = t.cfg.Capacity
	t.root.target = t.cfg.Capacity
	t.root.granted = t.cfg.Capacity
	t.deserve(t.root)
	t.settle(t.root, &rep)
	return rep
}

// aggregate rolls demand up the tree: a node's aggregate is its own
// demand (leaves only) plus its subtree's.
func (t *Tree) aggregate(n *node) float64 {
	n.agg = n.demand
	for _, c := range n.children {
		n.agg += t.aggregate(c)
	}
	return n.agg
}

// deserve splits each node's entitlement among its children by share —
// the static quota lending deviates from and reclaim restores.
func (t *Tree) deserve(n *node) {
	sum := 0.0
	for _, c := range n.children {
		sum += c.share
	}
	for _, c := range n.children {
		c.deserved = n.deserved * c.share / sum
		t.deserve(c)
	}
}

// guarantee is what the node may claim unconditionally this epoch: its
// MBR floor of its current slice, capped by what it actually wants.
func (n *node) guarantee() float64 {
	g := n.floor * n.slice
	if n.agg < g {
		return n.agg
	}
	return g
}

// settle distributes n's grant among its children (targets, then bounded
// movement), commits, and recurses. n.granted is final on entry.
func (t *Tree) settle(n *node, rep *Report) {
	if n.parent != nil {
		if l := n.deserved - n.granted; l > eps {
			n.lentTotal += l
			if len(n.children) == 0 {
				rep.Lent += l
			}
		}
	}
	kids := n.children
	if len(kids) == 0 {
		return
	}
	avail := n.granted
	sumShare := 0.0
	for _, c := range kids {
		sumShare += c.share
	}
	for _, c := range kids {
		c.slice = avail * c.share / sumShare
	}

	// Targets: static quotas when lending is off, water-filling otherwise.
	if t.cfg.DisableLending {
		for _, c := range kids {
			c.target = c.slice
		}
	} else {
		pool := avail
		base := make([]float64, len(kids))
		for i, c := range kids {
			base[i] = c.agg
			if base[i] > c.slice {
				base[i] = c.slice
			}
			pool -= base[i]
		}
		need := make([]float64, len(kids))
		w := make([]float64, len(kids))
		for i, c := range kids {
			if c.agg > c.slice {
				need[i] = c.agg - c.slice
				w[i] = c.oqWeight
			}
		}
		extra := waterfill(pool, need, w)
		for i := range extra {
			pool -= extra[i]
		}
		// Park what nobody demanded back on its owners, up to each slice.
		room := make([]float64, len(kids))
		for i, c := range kids {
			w[i] = 0
			if r := c.slice - base[i] - extra[i]; r > eps {
				room[i] = r
				w[i] = c.share
			} else {
				room[i] = 0
			}
		}
		back := waterfill(pool, room, w)
		for i, c := range kids {
			c.target = base[i] + extra[i] + back[i]
		}
	}

	// Bounded movement toward targets.
	newG := make([]float64, len(kids))
	sumNew := 0.0
	for i, c := range kids {
		prev := c.granted
		if c.target < prev-eps {
			// Reclaim: open (or re-arm on a widened gap) a §4.2 cut
			// schedule sized at half the gap, so the halving series spans
			// it; when the back-off runs out, snap the residual.
			gap := prev - c.target
			if c.sched == nil || gap > c.sizedGap+eps {
				minStep := t.cfg.MinStepFraction * c.deserved
				if minStep <= 0 {
					minStep = t.cfg.MinStepFraction * t.cfg.Capacity / 1e6
				}
				c.sched = core.NewCutSchedule(gap/2, minStep, t.cfg.NoBackoff)
				c.sizedGap = gap
			}
			g := c.target
			if cut, ok := c.sched.Next(); ok {
				if pg := prev - cut; pg > g {
					g = pg
				}
			}
			if g <= c.target+eps {
				g = c.target
				c.sched, c.sizedGap = nil, 0
			}
			newG[i] = g
		} else {
			c.sched, c.sizedGap = nil, 0
			newG[i] = prev
		}
		sumNew += newG[i]
	}

	// Mandatory corrections beyond the schedule: the sibling group must
	// fit the parent's grant (the parent itself may have been cut), and
	// every demanding child is entitled to its MBR floor immediately.
	// Both are funded pro-rata from cutters' remaining headroom; feasible
	// because guarantees are ≤ targets and Σ targets ≤ avail.
	free := avail - sumNew
	needTotal := 0.0
	for i, c := range kids {
		if g := c.guarantee(); newG[i] < g-eps {
			needTotal += g - newG[i]
		}
	}
	if deficit := needTotal - free; deficit > eps {
		headroom := 0.0
		for i, c := range kids {
			if h := newG[i] - c.target; h > eps {
				headroom += h
			}
		}
		if headroom > 0 {
			scale := deficit / headroom
			if scale > 1 {
				scale = 1
			}
			for i, c := range kids {
				if h := newG[i] - c.target; h > eps {
					newG[i] -= h * scale
					if newG[i] <= c.target+eps {
						newG[i] = c.target
						c.sched, c.sizedGap = nil, 0
					}
				}
			}
		}
		free = avail
		for i := range newG {
			free -= newG[i]
		}
	}
	for i, c := range kids {
		if g := c.guarantee(); newG[i] < g-eps {
			raise := g - newG[i]
			if raise > free {
				raise = free
			}
			if raise > 0 {
				newG[i] += raise
				free -= raise
			}
		}
	}

	// The rest of the freed budget raises whoever is still below target,
	// by over-quota weight.
	wantMore := make([]float64, len(kids))
	w := make([]float64, len(kids))
	for i, c := range kids {
		if r := c.target - newG[i]; r > eps {
			wantMore[i] = r
			w[i] = c.oqWeight
		}
	}
	for i, g := range waterfill(free, wantMore, w) {
		newG[i] += g
	}

	for i, c := range kids {
		if d := c.granted - newG[i]; d > eps {
			c.reclaimedTotal += d
			if len(c.children) == 0 {
				rep.Reclaimed += d
			}
		}
		c.granted = newG[i]
	}
	for _, c := range kids {
		t.settle(c, rep)
	}
}

// waterfill distributes pool among candidates proportionally to weight,
// capping each at want[i] and re-spilling the overflow. Runs at most
// len(want)+1 rounds: each round either drains the pool or saturates a
// candidate.
func waterfill(pool float64, want, weight []float64) []float64 {
	out := make([]float64, len(want))
	for round := 0; round <= len(want) && pool > eps; round++ {
		sumW := 0.0
		for i := range want {
			if want[i]-out[i] > eps && weight[i] > 0 {
				sumW += weight[i]
			}
		}
		if sumW == 0 {
			break
		}
		spill := 0.0
		for i := range want {
			if want[i]-out[i] <= eps || weight[i] <= 0 {
				continue
			}
			give := pool * weight[i] / sumW
			if room := want[i] - out[i]; give >= room {
				out[i] = want[i]
				spill += give - room
			} else {
				out[i] += give
			}
		}
		pool = spill
	}
	return out
}
