package tenant

import (
	"math"
	"strings"
	"testing"
)

func mustTree(t *testing.T, tenants []NodeSpec, cfg Config) *Tree {
	t.Helper()
	tr, err := New(tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		tenants []NodeSpec
		cfg     Config
		errPart string
	}{
		{"zero capacity", nil, Config{}, "capacity"},
		{"bad name", []NodeSpec{{Name: "a/b"}}, Config{Capacity: 1}, "must match"},
		{"empty name", []NodeSpec{{Name: ""}}, Config{Capacity: 1}, "must match"},
		{"duplicate", []NodeSpec{{Name: "a"}, {Name: "a"}}, Config{Capacity: 1}, "duplicate"},
		{"negative share", []NodeSpec{{Name: "a", Share: -1}}, Config{Capacity: 1}, "share"},
		{"negative weight", []NodeSpec{{Name: "a", OverQuotaWeight: -2}}, Config{Capacity: 1}, "over-quota"},
		{"floor above one", []NodeSpec{{Name: "a", MBRFloor: 1.5}}, Config{Capacity: 1}, "MBR floor"},
		{"bad default floor", nil, Config{Capacity: 1, DefaultMBRFloor: 2}, "MBR floor"},
	}
	for _, tc := range cases {
		if _, err := New(tc.tenants, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.errPart)
		}
	}
}

// TestDeservedSplit: entitlement follows shares down the tree, and
// saturated tenants converge onto exactly their deserved budget.
func TestDeservedSplit(t *testing.T) {
	tr := mustTree(t, []NodeSpec{
		{Name: "a", Share: 1},
		{Name: "b", Share: 3, Children: []NodeSpec{{Name: "x"}, {Name: "y", Share: 2}}},
	}, Config{Capacity: 8})
	for _, p := range []string{"a", "b/x", "b/y"} {
		if err := tr.SetDemand(p, 100); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		tr.Rebalance()
	}
	want := map[string]float64{"a": 2, "b": 6, "b/x": 2, "b/y": 4}
	for p, w := range want {
		if d := tr.Deserved(p); math.Abs(d-w) > 1e-9 {
			t.Errorf("Deserved(%s) = %g, want %g", p, d, w)
		}
		if g := tr.Granted(p); math.Abs(g-w) > 1e-6 {
			t.Errorf("Granted(%s) = %g, want %g (saturated ⇒ deserved)", p, g, w)
		}
	}
}

// TestLendThenReclaim is the subsystem's core story: an idle tenant's
// budget is lent to a saturated sibling, and when the idle tenant's demand
// returns it is reclaimed with bounded per-epoch cuts — floor immediately,
// full deserved share within the halving schedule's length.
func TestLendThenReclaim(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "lend"}, {Name: "busy"}}, Config{Capacity: 8})
	if err := tr.SetDemand("lend", 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDemand("busy", 8); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance()
	if g := tr.Granted("busy"); math.Abs(g-8) > 1e-9 {
		t.Fatalf("busy granted %g after lending epoch, want 8", g)
	}
	if g := tr.Granted("lend"); g > 1e-9 {
		t.Fatalf("idle lender granted %g, want 0", g)
	}

	// Demand returns: the first reclaim epoch must be bounded (half the
	// gap), yet the lender gets its floor back immediately.
	if err := tr.SetDemand("lend", 4); err != nil {
		t.Fatal(err)
	}
	rep := tr.Rebalance()
	gBusy, gLend := tr.Granted("busy"), tr.Granted("lend")
	// Gap is 4, so the schedule's opening cut is 2: busy 8→6 exactly, and
	// the freed 2 goes to the lender — already past its floor of 1.
	if math.Abs(gBusy-6) > 1e-9 {
		t.Fatalf("first reclaim epoch: busy granted %g, want exactly 6 (bounded cut)", gBusy)
	}
	if math.Abs(gLend-2) > 1e-9 {
		t.Fatalf("first reclaim epoch: lender granted %g, want 2", gLend)
	}
	if floor := 0.25 * 4.0; gLend < floor-1e-9 {
		t.Fatalf("lender below MBR floor after demand returned: %g < %g", gLend, floor)
	}
	if rep.Reclaimed <= 0 {
		t.Fatalf("report shows no reclaim: %+v", rep)
	}

	// Full deserved share restored within the schedule's length:
	// ceil(log2(gap/minStep)) + slack epochs.
	for i := 0; i < 12; i++ {
		tr.Rebalance()
	}
	if g := tr.Granted("lend"); math.Abs(g-4) > 1e-6 {
		t.Fatalf("lender not restored to deserved share: %g, want 4", g)
	}
	if g := tr.Granted("busy"); math.Abs(g-4) > 1e-6 {
		t.Fatalf("borrower not cut back to deserved share: %g, want 4", g)
	}
}

// TestParkedSliceNoChurn: with no borrower in sight, an idle tenant keeps
// its slice — no lending is recorded and nothing is cut back and forth.
func TestParkedSliceNoChurn(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "idle"}, {Name: "calm"}}, Config{Capacity: 8})
	if err := tr.SetDemand("idle", 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDemand("calm", 2); err != nil { // under its own slice
		t.Fatal(err)
	}
	var rep Report
	for i := 0; i < 5; i++ {
		rep = tr.Rebalance()
	}
	if rep.Lent > 1e-9 || rep.Reclaimed > 1e-9 {
		t.Fatalf("phantom lending without a borrower: %+v", rep)
	}
	if g := tr.Granted("idle"); math.Abs(g-4) > 1e-6 {
		t.Fatalf("idle tenant's parked slice = %g, want 4", g)
	}
}

func TestDisableLending(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "idle"}, {Name: "busy"}},
		Config{Capacity: 8, DisableLending: true})
	if err := tr.SetDemand("busy", 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr.Rebalance()
	}
	if g := tr.Granted("busy"); g > 4+1e-9 {
		t.Fatalf("static quotas leaked budget: busy granted %g > slice 4", g)
	}
}

func TestEnsure(t *testing.T) {
	tr := mustTree(t, nil, Config{Capacity: 8})
	created, err := tr.Ensure("acme/prod")
	if err != nil || !created {
		t.Fatalf("Ensure(acme/prod) = %v, %v; want created", created, err)
	}
	created, err = tr.Ensure("acme/prod")
	if err != nil || created {
		t.Fatalf("second Ensure(acme/prod) = %v, %v; want no-op", created, err)
	}
	if _, err := tr.Ensure("acme"); err == nil {
		t.Fatal("Ensure(acme) on an internal node should refuse (not a leaf)")
	}
	if err := tr.SetDemand("acme", 1); err == nil {
		t.Fatal("SetDemand on internal node should refuse")
	}
	if err := tr.SetDemand("acme/prod", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Ensure(""); err == nil {
		t.Fatal("Ensure(\"\") should refuse")
	}
	if _, err := tr.Ensure("bad name"); err == nil {
		t.Fatal("Ensure with bad segment should refuse")
	}
	if got := tr.Tenants(); len(got) != 2 || got[0] != "acme" || got[1] != "acme/prod" {
		t.Fatalf("Tenants() = %v", got)
	}
}

// TestLateArrivalGetsFloorImmediately: a tenant registered while its
// siblings hold the whole budget still receives its MBR floor on the very
// next epoch — the Theorem 2 analogue for admission-time fairness.
func TestLateArrivalGetsFloorImmediately(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "old"}}, Config{Capacity: 9})
	if err := tr.SetDemand("old", 9); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance()
	if g := tr.Granted("old"); math.Abs(g-9) > 1e-9 {
		t.Fatalf("old granted %g, want 9", g)
	}
	if _, err := tr.Ensure("fresh"); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetDemand("fresh", 9); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance()
	// fresh's slice is 4.5 (equal shares), floor 0.25 ⇒ ≥ 1.125 right away.
	if g := tr.Granted("fresh"); g < 0.25*4.5-1e-9 {
		t.Fatalf("late arrival below floor: %g < %g", g, 0.25*4.5)
	}
	for i := 0; i < 15; i++ {
		tr.Rebalance()
	}
	if g := tr.Granted("fresh"); math.Abs(g-4.5) > 1e-6 {
		t.Fatalf("late arrival never reached deserved share: %g, want 4.5", g)
	}
}

func TestEffectiveMBRFloor(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "a", MBRFloor: 0.4}, {Name: "b"}},
		Config{Capacity: 8, DefaultMBRFloor: 0.3})
	if f, err := tr.EffectiveMBRFloor("a"); err != nil || f != 0.4 {
		t.Fatalf("EffectiveMBRFloor(a) = %g, %v; want 0.4", f, err)
	}
	if f, err := tr.EffectiveMBRFloor("b"); err != nil || f != 0.3 {
		t.Fatalf("EffectiveMBRFloor(b) = %g, %v; want 0.3 (default)", f, err)
	}
	if _, err := tr.EffectiveMBRFloor("nope"); err == nil {
		t.Fatal("unknown tenant should error")
	}
}

func TestStatusAll(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "a"}, {Name: "b"}}, Config{Capacity: 8})
	if err := tr.SetDemand("b", 8); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance()
	st := tr.StatusAll()
	if len(st) != 2 || st[0].Path != "a" || st[1].Path != "b" {
		t.Fatalf("StatusAll order: %+v", st)
	}
	if st[0].Lent != 4 || st[1].Borrowed != 4 {
		t.Fatalf("lent/borrowed gauges: a.Lent=%g b.Borrowed=%g, want 4/4",
			st[0].Lent, st[1].Borrowed)
	}
	if !st[0].Leaf || st[0].Deserved != 4 || st[0].Slice != 4 {
		t.Fatalf("status a: %+v", st[0])
	}
	if st[0].LentTotal <= 0 {
		t.Fatalf("a.LentTotal = %g, want > 0", st[0].LentTotal)
	}
	if tr.Epochs() != 1 {
		t.Fatalf("Epochs() = %d, want 1", tr.Epochs())
	}
}

// TestNoBackoff: with back-off disabled the reclaim keeps cutting at the
// opening step every epoch, so it finishes in ~2 epochs instead of log2.
func TestNoBackoff(t *testing.T) {
	tr := mustTree(t, []NodeSpec{{Name: "lend"}, {Name: "busy"}},
		Config{Capacity: 8, NoBackoff: true})
	if err := tr.SetDemand("busy", 8); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance()
	if err := tr.SetDemand("lend", 4); err != nil {
		t.Fatal(err)
	}
	tr.Rebalance() // cut 2 (gap/2)
	tr.Rebalance() // cut 2 again — no halving
	if g := tr.Granted("busy"); math.Abs(g-4) > 1e-6 {
		t.Fatalf("NoBackoff reclaim after 2 epochs: busy %g, want 4", g)
	}
}
