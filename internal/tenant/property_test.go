package tenant

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The property tests prove the tenant-level analogues of ReBudget's
// guarantees over randomized trees and demand traces:
//
//  1. MBR floor (Theorem 2 lifted): on EVERY epoch, every tenant's granted
//     budget is ≥ min(demand, floor × slice) — a demanding tenant is never
//     starved below its floor, not even mid-reclaim.
//  2. Conservation: Σ sibling grants never exceeds the parent's grant
//     (hence Σ leaf grants ≤ capacity) — lending never mints budget.
//  3. Convergence: once demand freezes, grants settle onto targets within
//     the halving schedule's length, and saturated tenants get exactly
//     their deserved share back.
//  4. Efficiency: lending serves at least as much demand as static quotas
//     on every trace, and strictly more whenever there is headroom to lend.

const propTol = 1e-6

// randTree builds a random tenant tree (depth ≤ 3, fanout ≤ 4) with random
// shares, floors and over-quota weights, and returns its leaf paths.
func randTree(t *testing.T, rng *rand.Rand, cfg Config) (*Tree, []string) {
	t.Helper()
	var specs []NodeSpec
	id := 0
	var grow func(depth int) NodeSpec
	grow = func(depth int) NodeSpec {
		id++
		spec := NodeSpec{
			Name:            fmt.Sprintf("t%d", id),
			Share:           0.5 + 2.5*rng.Float64(),
			OverQuotaWeight: 0.5 + 1.5*rng.Float64(),
			MBRFloor:        0.1 + 0.4*rng.Float64(),
		}
		if depth < 2 && rng.Float64() < 0.4 {
			for i := 0; i < 1+rng.Intn(3); i++ {
				spec.Children = append(spec.Children, grow(depth+1))
			}
		}
		return spec
	}
	for i := 0; i < 2+rng.Intn(3); i++ {
		specs = append(specs, grow(0))
	}
	tr, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var leaves []string
	for _, p := range tr.Tenants() {
		if n := tr.byPath[p]; len(n.children) == 0 {
			leaves = append(leaves, p)
		}
	}
	return tr, leaves
}

// stepDemand mutates each leaf's demand with persistence: mostly hold,
// sometimes jump between idle / moderate / saturating regimes.
func stepDemand(t *testing.T, rng *rand.Rand, tr *Tree, leaves []string, demand map[string]float64) {
	t.Helper()
	for _, p := range leaves {
		if rng.Float64() < 0.3 {
			switch rng.Intn(3) {
			case 0:
				demand[p] = 0
			case 1:
				demand[p] = tr.Capacity() * rng.Float64() / float64(len(leaves))
			default:
				demand[p] = tr.Capacity() * (0.5 + rng.Float64())
			}
		}
		if err := tr.SetDemand(p, demand[p]); err != nil {
			t.Fatal(err)
		}
	}
}

// checkInvariants asserts the floor and conservation properties on the
// current epoch's state.
func checkInvariants(t *testing.T, tr *Tree, epoch int) {
	t.Helper()
	byPath := map[string]Status{}
	childSum := map[string]float64{}
	rootSum := 0.0
	for _, s := range tr.StatusAll() {
		byPath[s.Path] = s
		if i := lastSlash(s.Path); i >= 0 {
			childSum[s.Path[:i]] += s.Granted
		} else {
			rootSum += s.Granted
		}
	}
	if rootSum > tr.Capacity()+propTol {
		t.Fatalf("epoch %d: Σ top-level grants %g exceeds capacity %g", epoch, rootSum, tr.Capacity())
	}
	for _, s := range byPath {
		if s.Granted < -propTol {
			t.Fatalf("epoch %d: tenant %s granted %g < 0", epoch, s.Path, s.Granted)
		}
		// Theorem 2 at the tenant level: never below min(demand, floor×slice).
		guarantee := s.MBRFloor * s.Slice
		if s.Demand < guarantee {
			guarantee = s.Demand
		}
		if s.Granted < guarantee-propTol {
			t.Fatalf("epoch %d: tenant %s below MBR floor: granted %g < min(demand %g, %g×slice %g)",
				epoch, s.Path, s.Granted, s.Demand, s.MBRFloor, s.Slice)
		}
	}
	for parent, sum := range childSum {
		if sum > byPath[parent].Granted+propTol {
			t.Fatalf("epoch %d: children of %s hold %g > parent grant %g",
				epoch, parent, sum, byPath[parent].Granted)
		}
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// TestPropertyFloorAndConservation: randomized trees × randomized demand
// traces; the floor and conservation invariants must hold on every single
// epoch, including mid-reclaim transients.
func TestPropertyFloorAndConservation(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Capacity:        4 + 60*rng.Float64(),
			DefaultMBRFloor: 0.1 + 0.4*rng.Float64(),
			NoBackoff:       seed%7 == 3, // exercise the ablation path too
		}
		tr, leaves := randTree(t, rng, cfg)
		demand := map[string]float64{}
		for epoch := 0; epoch < 60; epoch++ {
			stepDemand(t, rng, tr, leaves, demand)
			// Mid-trace arrivals: a brand-new tenant self-registers and
			// must be floored immediately like everyone else.
			if epoch == 20 {
				p := fmt.Sprintf("late%d", seed)
				if _, err := tr.Ensure(p); err != nil {
					t.Fatal(err)
				}
				leaves = append(leaves, p)
				demand[p] = cfg.Capacity
			}
			tr.Rebalance()
			checkInvariants(t, tr, epoch)
		}
	}
}

// TestPropertyConvergence: freeze demand and the economy settles — every
// grant reaches its target (reclaim cycles complete, they don't decay
// forever), and tenants whose whole ancestry is saturated get back exactly
// their deserved share.
func TestPropertyConvergence(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, leaves := randTree(t, rng, Config{Capacity: 32})
		demand := map[string]float64{}
		for epoch := 0; epoch < 25; epoch++ { // churn phase
			stepDemand(t, rng, tr, leaves, demand)
			tr.Rebalance()
		}
		saturate := rng.Float64() < 0.5
		for _, p := range leaves { // freeze phase
			if saturate {
				demand[p] = tr.Capacity()
			}
			if err := tr.SetDemand(p, demand[p]); err != nil {
				t.Fatal(err)
			}
		}
		for epoch := 0; epoch < 40; epoch++ {
			tr.Rebalance()
		}
		for _, s := range tr.StatusAll() {
			if s.Reclaiming {
				t.Errorf("seed %d: tenant %s still mid-reclaim after 40 frozen epochs", seed, s.Path)
			}
			if saturate && math.Abs(s.Granted-s.Deserved) > propTol {
				t.Errorf("seed %d: saturated tenant %s granted %g ≠ deserved %g",
					seed, s.Path, s.Granted, s.Deserved)
			}
		}
	}
}

// TestPropertyLendingBeatsStatic: on every random trace, the lending
// economy serves at least as much demand as static quotas; across the
// suite it must win strictly and by a real margin in aggregate (that is
// the whole point of lending).
func TestPropertyLendingBeatsStatic(t *testing.T) {
	totalLend, totalStatic := 0.0, 0.0
	for seed := int64(200); seed < 230; seed++ {
		servedBoth := [2]float64{}
		for mode := 0; mode < 2; mode++ {
			rng := rand.New(rand.NewSource(seed)) // identical tree + trace per mode
			cfg := Config{Capacity: 16, DisableLending: mode == 1}
			tr, leaves := randTree(t, rng, cfg)
			demand := map[string]float64{}
			for epoch := 0; epoch < 50; epoch++ {
				stepDemand(t, rng, tr, leaves, demand)
				tr.Rebalance()
				for _, p := range leaves {
					g := tr.Granted(p)
					if d := demand[p]; d < g {
						g = d
					}
					servedBoth[mode] += g
				}
			}
		}
		if servedBoth[0] < servedBoth[1]-propTol {
			t.Fatalf("seed %d: lending served %g < static %g", seed, servedBoth[0], servedBoth[1])
		}
		totalLend += servedBoth[0]
		totalStatic += servedBoth[1]
	}
	if totalLend < totalStatic*1.02 {
		t.Fatalf("lending should measurably beat static quotas in aggregate: %g vs %g",
			totalLend, totalStatic)
	}
}

// TestPropertyReclaimBound: the number of epochs to fully restore a
// lender's deserved share is bounded by the halving schedule's length —
// log₂(gap/minStep) plus the snap — independent of how much was lent.
func TestPropertyReclaimBound(t *testing.T) {
	for seed := int64(300); seed < 320; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 8 + 120*rng.Float64()
		tr, err := New([]NodeSpec{{Name: "lend"}, {Name: "busy"}}, Config{Capacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.SetDemand("busy", capacity); err != nil {
			t.Fatal(err)
		}
		tr.Rebalance()
		deserved := tr.Deserved("lend")
		if err := tr.SetDemand("lend", capacity); err != nil {
			t.Fatal(err)
		}
		// gap = deserved; schedule = gap/2, gap/4, … down to 0.01×deserved,
		// then the snap: ⌈log₂(0.5/0.01)⌉ + 1 = 7 epochs, +1 slack.
		bound := int(math.Ceil(math.Log2(0.5/0.01))) + 2
		restored := -1
		for epoch := 1; epoch <= bound; epoch++ {
			tr.Rebalance()
			if math.Abs(tr.Granted("lend")-deserved) <= propTol {
				restored = epoch
				break
			}
		}
		if restored < 0 {
			t.Fatalf("seed %d (capacity %g): lender not restored within %d epochs (granted %g, deserved %g)",
				seed, capacity, bound, tr.Granted("lend"), deserved)
		}
	}
}
