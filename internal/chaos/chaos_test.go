package chaos

import (
	"reflect"
	"testing"
	"time"
)

// Same seed, same per-target call sequence ⇒ same fault decisions — the
// contract every chaos assertion rests on.
func TestInjectorDeterministicPerSeed(t *testing.T) {
	cfg := Config{
		Seed: 42, LatencyRate: 0.3, DropRate: 0.2, Blip5xxRate: 0.1,
		ResetRate: 0.15, SaveEIORate: 0.2, TornWriteRate: 0.2, LoadCorruptRate: 0.3,
	}
	run := func() ([]transportPlan, []diskPlan, []bool) {
		in := New(cfg)
		var tps []transportPlan
		var dps []diskPlan
		var loads []bool
		for i := 0; i < 200; i++ {
			tps = append(tps, in.planRequest("shard-a:9001"))
			tps = append(tps, in.planRequest("shard-b:9002"))
			dps = append(dps, in.planSave("sess-1"))
			c, _ := in.planLoad("sess-2")
			loads = append(loads, c)
		}
		return tps, dps, loads
	}
	t1, d1, l1 := run()
	t2, d2, l2 := run()
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(l1, l2) {
		t.Fatal("same seed produced different fault sequences")
	}
}

// Per-target streams are independent of interleaving: target A's k-th draw
// does not change because target B was queried in between.
func TestInjectorStreamsIndependent(t *testing.T) {
	cfg := Config{Seed: 7, LatencyRate: 0.5, DropRate: 0.5}
	solo := New(cfg)
	var want []transportPlan
	for i := 0; i < 64; i++ {
		want = append(want, solo.planRequest("target-a"))
	}
	mixed := New(cfg)
	var got []transportPlan
	for i := 0; i < 64; i++ {
		mixed.planRequest("target-b") // interleaved noise
		got = append(got, mixed.planRequest("target-a"))
		mixed.planSave("some-session")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("target-a's stream was perturbed by other targets")
	}
}

// Different seeds must actually differ (a frozen stream would pass the
// determinism tests vacuously).
func TestInjectorSeedsDiffer(t *testing.T) {
	draw := func(seed uint64) []transportPlan {
		in := New(Config{Seed: seed, LatencyRate: 0.5, DropRate: 0.5, Blip5xxRate: 0.5})
		var out []transportPlan
		for i := 0; i < 64; i++ {
			out = append(out, in.planRequest("t"))
		}
		return out
	}
	if reflect.DeepEqual(draw(1), draw(2)) {
		t.Fatal("seeds 1 and 2 drew identical fault sequences")
	}
}

// A disabled config builds no injector, and the nil injector is inert.
func TestDisabledConfigIsNil(t *testing.T) {
	if in := New(Config{Seed: 9}); in != nil {
		t.Fatal("zero-rate config should build a nil injector")
	}
	var in *Injector
	if p := in.planRequest("x"); p != (transportPlan{}) {
		t.Fatal("nil injector planned a fault")
	}
	if p := in.planSave("x"); p != (diskPlan{}) {
		t.Fatal("nil injector planned a disk fault")
	}
	if c, _ := in.planLoad("x"); c {
		t.Fatal("nil injector planned a load corruption")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatal("nil injector has stats")
	}
}

// Fault rates are honoured to first order, and the stats counters track
// what actually fired.
func TestInjectorRatesAndStats(t *testing.T) {
	in := New(Config{Seed: 3, LatencyRate: 0.25, LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond})
	const n = 4000
	hits := 0
	for i := 0; i < n; i++ {
		if p := in.planRequest("host"); p.latency > 0 {
			hits++
			if p.latency < time.Millisecond || p.latency > 2*time.Millisecond {
				t.Fatalf("latency %v outside [1ms,2ms]", p.latency)
			}
		}
	}
	if got := in.Stats().Latencies; got != hits {
		t.Fatalf("stats.Latencies = %d, observed %d", got, hits)
	}
	frac := float64(hits) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("latency rate %.3f far from configured 0.25", frac)
	}
}

// Schedules are pure functions of their config, non-overlapping in their
// shard-disturbance windows, and paired open/close.
func TestScheduleDeterministicAndWellFormed(t *testing.T) {
	cfg := ScheduleConfig{
		Seed: 11, Steps: 200, Shards: 2,
		Sessions:   []string{"a", "b", "c"},
		Partitions: 2, Kills: 1, LatencySpikes: 1, Corruptions: 2,
	}
	s1 := NewSchedule(cfg)
	s2 := NewSchedule(cfg)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same config produced different schedules")
	}
	if len(s1) == 0 {
		t.Fatal("empty schedule")
	}
	if reflect.DeepEqual(s1, NewSchedule(ScheduleConfig{
		Seed: 12, Steps: 200, Shards: 2, Sessions: cfg.Sessions,
		Partitions: 2, Kills: 1, LatencySpikes: 1, Corruptions: 2,
	})) {
		t.Fatal("different seeds produced identical schedules")
	}

	// Every disturbance opens before it closes, and no two shard outages
	// overlap: at most one shard is dark at any step.
	type window struct{ from, to int }
	var outages []window
	open := map[EventKind]map[int]int{ // kind → shard → open step
		EventPartition: {}, EventKillShard: {},
	}
	closer := map[EventKind]EventKind{EventHeal: EventPartition, EventRestartShard: EventKillShard}
	for _, e := range s1 {
		if e.Step < 1 || e.Step > cfg.Steps {
			t.Fatalf("event %v outside schedule", e)
		}
		switch e.Kind {
		case EventPartition, EventKillShard:
			open[e.Kind][e.Shard] = e.Step
		case EventHeal, EventRestartShard:
			k := closer[e.Kind]
			from, ok := open[k][e.Shard]
			if !ok {
				t.Fatalf("%v closes a window that never opened", e)
			}
			outages = append(outages, window{from, e.Step})
			delete(open[k], e.Shard)
		}
	}
	for k, m := range open {
		if len(m) != 0 {
			t.Fatalf("unclosed %v windows: %v", k, m)
		}
	}
	for i, a := range outages {
		for _, b := range outages[i+1:] {
			if a.from < b.to && b.from < a.to {
				t.Fatalf("outage windows overlap: %v and %v", a, b)
			}
		}
	}
}

// Shard adds are opt-in and draw after everything else: a schedule with
// ShardAdds set is the exact pre-elastic schedule plus add-shard events,
// and each add lands inside an outage window (growing the fleet while it
// is degraded is the case worth rehearsing).
func TestScheduleShardAddsExtendWithoutPerturbing(t *testing.T) {
	base := ScheduleConfig{
		Seed: 11, Steps: 200, Shards: 2,
		Sessions:   []string{"a", "b", "c"},
		Partitions: 2, Kills: 1, LatencySpikes: 1, Corruptions: 2,
	}
	withAdds := base
	withAdds.ShardAdds = 2
	s0 := NewSchedule(base)
	s1 := NewSchedule(withAdds)

	strip := func(events []Event) []Event {
		var out []Event
		for _, e := range events {
			if e.Kind != EventAddShard {
				out = append(out, e)
			}
		}
		return out
	}
	if !reflect.DeepEqual(s0, strip(s1)) {
		t.Fatal("enabling ShardAdds perturbed the pre-elastic schedule")
	}

	adds := 0
	inOutage := func(step int) bool {
		open := map[int]int{}
		for _, e := range s1 {
			switch e.Kind {
			case EventPartition, EventKillShard:
				open[e.Shard] = e.Step
			case EventHeal, EventRestartShard:
				if s, ok := open[e.Shard]; ok && s <= step && step < e.Step {
					return true
				}
				delete(open, e.Shard)
			}
		}
		return false
	}
	for _, e := range s1 {
		if e.Kind != EventAddShard {
			continue
		}
		adds++
		if e.Shard < base.Shards {
			t.Fatalf("add-shard names an existing shard index %d", e.Shard)
		}
		if !inOutage(e.Step) {
			t.Fatalf("add-shard at step %d is outside every outage window", e.Step)
		}
	}
	if adds != 2 {
		t.Fatalf("schedule carries %d add-shard events, want 2", adds)
	}
}
