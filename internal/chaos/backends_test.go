package chaos

import (
	"errors"
	"net/http/httptest"
	"testing"

	"rebudget/internal/cluster"
	"rebudget/internal/server"
)

// The fault suite must hold for every SnapshotStore backend, not just the
// file store it was written against: the cluster backends (HTTP snapshot
// service, in-process N-way replication, plain memory) all expose the same
// RawSnapshotStore seam, so torn writes and bit rot corrupt their real
// stored bytes and the shared decode path must turn the damage into
// ErrNoSnapshot — a cold start, never a panic.
func clusterBackends(t *testing.T) map[string]server.SnapshotStore {
	t.Helper()
	snapSrv := httptest.NewServer(cluster.NewSnapServer(0, nil).Handler())
	t.Cleanup(snapSrv.Close)
	replicated, err := cluster.NewReplicatedSnapshotStore(
		server.NewMemorySnapshotStore(), server.NewMemorySnapshotStore())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]server.SnapshotStore{
		"memory":     server.NewMemorySnapshotStore(),
		"http":       cluster.NewHTTPSnapshotStore(snapSrv.URL, snapSrv.Client()),
		"replicated": replicated,
	}
}

func TestFaultyStoreSuiteOverClusterBackends(t *testing.T) {
	for name, inner := range clusterBackends(t) {
		t.Run(name, func(t *testing.T) {
			raw, ok := inner.(server.RawSnapshotStore)
			if !ok {
				t.Fatalf("%s backend lacks the RawSnapshotStore seam chaos faults need", name)
			}

			// Passthrough: a nil injector is transparent.
			pt := NewFaultySnapshotStore(inner, nil)
			if err := pt.Save(testSnap("pt")); err != nil {
				t.Fatal(err)
			}
			if got, err := pt.Load("pt"); err != nil || got.Epochs != 12 {
				t.Fatalf("passthrough load: %+v %v", got, err)
			}
			if err := pt.Delete("pt"); err != nil {
				t.Fatal(err)
			}

			// EIO on save fails without touching the stored snapshot.
			if err := inner.Save(testSnap("eio")); err != nil {
				t.Fatal(err)
			}
			eio := NewFaultySnapshotStore(inner, New(Config{Seed: 5, SaveEIORate: 1}))
			if err := eio.Save(testSnap("eio")); !errors.Is(err, ErrInjectedIO) {
				t.Fatalf("want ErrInjectedIO, got %v", err)
			}
			if got, err := inner.Load("eio"); err != nil || got.Epochs != 12 {
				t.Fatalf("EIO clobbered the stored snapshot: %+v %v", got, err)
			}

			// Torn write: truncated bytes land, decode rejects them.
			torn := NewFaultySnapshotStore(inner, New(Config{Seed: 5, TornWriteRate: 1}))
			if err := torn.Save(testSnap("torn")); err != nil {
				t.Fatal(err)
			}
			if buf, err := raw.LoadRaw("torn"); err != nil || len(buf) == 0 {
				t.Fatalf("torn write left nothing: %d bytes, %v", len(buf), err)
			}
			if _, err := torn.Load("torn"); !errors.Is(err, server.ErrNoSnapshot) {
				t.Fatalf("torn snapshot: want ErrNoSnapshot, got %v", err)
			}

			// Bit rot on load: the checksum catches the flip.
			rot := NewFaultySnapshotStore(inner, New(Config{Seed: 5, LoadCorruptRate: 1}))
			if err := rot.Save(testSnap("rot")); err != nil {
				t.Fatal(err)
			}
			if _, err := rot.Load("rot"); !errors.Is(err, server.ErrNoSnapshot) {
				t.Fatalf("rotted snapshot: want ErrNoSnapshot, got %v", err)
			}

			// Scripted corruption: deterministic flip, caught on next load.
			script := NewFaultySnapshotStore(inner, nil)
			if err := script.Save(testSnap("script")); err != nil {
				t.Fatal(err)
			}
			if err := script.CorruptNow("script", 12345); err != nil {
				t.Fatal(err)
			}
			if _, err := script.Load("script"); !errors.Is(err, server.ErrNoSnapshot) {
				t.Fatalf("scripted corruption: want ErrNoSnapshot, got %v", err)
			}
		})
	}
}

// Replication is the one backend where corruption should NOT mean a cold
// start unless it hits every replica: rot injected through the replicated
// store's raw seam damages all copies (tested above), but rot on a single
// replica is survived and healed.
func TestReplicatedBackendSurvivesSingleReplicaFaults(t *testing.T) {
	intact := server.NewMemorySnapshotStore()
	flaky := server.NewMemorySnapshotStore()
	// The faulty wrapper sits around ONE replica; the replicated store
	// composes it like any other SnapshotStore.
	faulty := NewFaultySnapshotStore(flaky, New(Config{Seed: 9, LoadCorruptRate: 1}))
	rs, err := cluster.NewReplicatedSnapshotStore(faulty, intact)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save(testSnap("one")); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Load("one")
	if err != nil || got.Epochs != 12 {
		t.Fatalf("single-replica rot must not cost the snapshot: %+v %v", got, err)
	}
}
