package chaos

import (
	"errors"
	"testing"
	"time"

	"rebudget/internal/server"
)

func fileStore(t *testing.T) *server.FileSnapshotStore {
	t.Helper()
	st, err := server.NewFileSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testSnap(id string) *server.SessionSnapshot {
	return &server.SessionSnapshot{
		Version: server.SnapshotVersion,
		ID:      id,
		Spec:    server.SessionSpec{Mechanism: "equalshare", Workload: server.WorkloadSpec{Fig3: true}},
		Epochs:  12,
		Health:  "healthy",
		SavedAt: time.Unix(1700000000, 0).UTC(),
		Market:  &server.MarketSnapshot{Demand: []float64{1.25, 2.5}, Weights: []float64{1, 1}},
	}
}

// A faulty store with a nil injector is a transparent passthrough.
func TestFaultyStorePassthrough(t *testing.T) {
	fs := NewFaultySnapshotStore(fileStore(t), nil)
	if err := fs.Save(testSnap("pt")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load("pt")
	if err != nil || got.Epochs != 12 {
		t.Fatalf("passthrough load: %+v %v", got, err)
	}
	if err := fs.Delete("pt"); err != nil {
		t.Fatal(err)
	}
}

// EIO on save fails without touching the stored snapshot.
func TestFaultyStoreEIO(t *testing.T) {
	inner := fileStore(t)
	if err := inner.Save(testSnap("eio")); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultySnapshotStore(inner, New(Config{Seed: 5, SaveEIORate: 1}))
	if err := fs.Save(testSnap("eio")); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("want ErrInjectedIO, got %v", err)
	}
	// The previous good snapshot survives the failed save.
	if got, err := inner.Load("eio"); err != nil || got.Epochs != 12 {
		t.Fatalf("EIO clobbered the stored snapshot: %+v %v", got, err)
	}
}

// A torn write lands truncated bytes; the inner store's load machinery
// must turn that into ErrNoSnapshot (a cold start), never a parse panic.
func TestFaultyStoreTornWrite(t *testing.T) {
	inner := fileStore(t)
	fs := NewFaultySnapshotStore(inner, New(Config{Seed: 5, TornWriteRate: 1}))
	if err := fs.Save(testSnap("torn")); err != nil {
		t.Fatal(err)
	}
	raw, err := inner.LoadRaw("torn")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("torn write left nothing at all")
	}
	if _, err := fs.Load("torn"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("torn snapshot: want ErrNoSnapshot, got %v", err)
	}
	if fs.inj.Stats().TornWrites != 1 {
		t.Fatalf("torn writes = %d, want 1", fs.inj.Stats().TornWrites)
	}
}

// Bit rot on load flips real stored bytes; the checksum catches it and the
// load degrades to ErrNoSnapshot.
func TestFaultyStoreLoadCorruption(t *testing.T) {
	inner := fileStore(t)
	fs := NewFaultySnapshotStore(inner, New(Config{Seed: 5, LoadCorruptRate: 1}))
	if err := fs.Save(testSnap("rot")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load("rot"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("rotted snapshot: want ErrNoSnapshot, got %v", err)
	}
}

// CorruptNow is the scripted corruption event: deterministic per draw, and
// caught by the checksum on the next load.
func TestFaultyStoreCorruptNow(t *testing.T) {
	inner := fileStore(t)
	fs := NewFaultySnapshotStore(inner, nil)
	if err := fs.Save(testSnap("script")); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptNow("script", 12345); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load("script"); !errors.Is(err, server.ErrNoSnapshot) {
		t.Fatalf("scripted corruption: want ErrNoSnapshot, got %v", err)
	}
}
