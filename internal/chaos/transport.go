package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Transport is a chaos http.RoundTripper: it wraps a real transport and
// injects the Injector's network faults per request, plus explicit full
// partitions per host scripted from outside (see Schedule). Install it as
// router.Config.Transport to shake the proxy path, or via
// client.WithHTTPClient to shake a controller.
//
// Partitions cut the data path only. A prober whose client does not go
// through this transport keeps seeing green /healthz while every proxied
// request fails — a gray failure, the exact scenario passive breaker
// detection exists for.
type Transport struct {
	inj   *Injector // nil: only explicit partitions fire
	inner http.RoundTripper

	mu          sync.Mutex
	partitioned map[string]bool
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with the
// injector's network faults. A nil injector is valid: the transport then
// only enforces explicit Partition calls.
func NewTransport(inj *Injector, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inj: inj, inner: inner, partitioned: make(map[string]bool)}
}

// hostKey normalises a host or base URL ("http://127.0.0.1:9001/",
// "127.0.0.1:9001") onto the request-host key used for partition lookups
// and per-host fault streams.
func hostKey(s string) string {
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Partition starts a full partition of host (a host:port or base URL):
// every request to it fails at the transport level until Heal.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	t.partitioned[hostKey(host)] = true
	t.mu.Unlock()
}

// Heal ends a partition started by Partition.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.partitioned, hostKey(host))
	t.mu.Unlock()
}

// Partitioned reports whether host is currently partitioned.
func (t *Transport) Partitioned(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned[hostKey(host)]
}

// RoundTrip implements http.RoundTripper. Fault order per request:
// partition check, injected latency, pre-send drop, synthesized 5xx blip,
// the real round trip, then (if drawn) a mid-body reset on the response.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	cut := t.partitioned[host]
	t.mu.Unlock()
	if cut {
		t.inj.notePartitionDrop()
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, host)
	}
	p := t.inj.planRequest(host)
	if p.latency > 0 {
		timer := time.NewTimer(p.latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if p.drop {
		return nil, fmt.Errorf("%w: %s", ErrDropped, host)
	}
	if p.blip {
		return blipResponse(req), nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || !p.reset {
		return resp, err
	}
	// Mid-body reset: let the status and headers through, then cut the
	// stream partway. Half of a known body, else a small prefix.
	limit := int64(64)
	if resp.ContentLength > 1 {
		limit = resp.ContentLength / 2
	}
	resp.Body = &resetBody{inner: resp.Body, remaining: limit, host: host}
	return resp, nil
}

// blipResponse synthesizes the 503 a flaky middlebox would answer.
func blipResponse(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected 5xx blip"}`
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"application/json"}, "X-Chaos": {"blip"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// resetBody streams the first remaining bytes, then fails with ErrReset —
// a connection reset after the response was already committed.
type resetBody struct {
	inner     io.ReadCloser
	remaining int64
	host      string
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrReset, b.host)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The body ended before the cut point; the reset never landed.
		return n, err
	}
	if b.remaining <= 0 && err == nil {
		err = fmt.Errorf("%w: %s", ErrReset, b.host)
	}
	return n, err
}

func (b *resetBody) Close() error { return b.inner.Close() }
