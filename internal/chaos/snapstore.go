package chaos

import (
	"fmt"

	"rebudget/internal/server"
)

// FaultySnapshotStore wraps a SnapshotStore with seeded disk faults: EIO
// on save, torn (truncated) writes, and bit rot surfacing on load. Torn
// writes and bit rot need byte-level access to the stored representation;
// when the inner store also implements server.RawSnapshotStore (as
// FileSnapshotStore does) they corrupt the real durable bytes, so the
// wrapped store's own integrity machinery — checksums, JSON parsing — is
// what has to catch them. Against a store without raw access those faults
// degrade to injected EIO, which still exercises the caller's error path.
type FaultySnapshotStore struct {
	inner server.SnapshotStore
	raw   server.RawSnapshotStore // nil when inner has no byte-level seam
	inj   *Injector
}

// NewFaultySnapshotStore wraps inner with the injector's disk faults. A
// nil injector yields a transparent passthrough.
func NewFaultySnapshotStore(inner server.SnapshotStore, inj *Injector) *FaultySnapshotStore {
	raw, _ := inner.(server.RawSnapshotStore)
	return &FaultySnapshotStore{inner: inner, raw: raw, inj: inj}
}

// Save implements server.SnapshotStore. An EIO fault fails the save
// without touching the disk; a torn-write fault lets the save land, then
// truncates the stored bytes mid-file — the state a power loss between
// write and fsync leaves behind.
func (f *FaultySnapshotStore) Save(snap *server.SessionSnapshot) error {
	p := f.inj.planSave(snap.ID)
	if p.eio {
		return fmt.Errorf("%w: saving %q", ErrInjectedIO, snap.ID)
	}
	if err := f.inner.Save(snap); err != nil {
		return err
	}
	if p.torn && f.raw != nil {
		if err := f.tear(snap.ID, p.tornAt); err != nil {
			return fmt.Errorf("chaos: tearing %q: %w", snap.ID, err)
		}
	}
	return nil
}

// tear truncates id's stored bytes at fraction frac.
func (f *FaultySnapshotStore) tear(id string, frac float64) error {
	buf, err := f.raw.LoadRaw(id)
	if err != nil {
		return err
	}
	cut := int(float64(len(buf)) * frac)
	if cut >= len(buf) {
		cut = len(buf) - 1
	}
	if cut < 1 {
		cut = 1
	}
	return f.raw.SaveRaw(id, buf[:cut])
}

// Load implements server.SnapshotStore. A corrupt fault flips one stored
// bit before delegating, so the inner store's checksum verification is
// what turns the rot into ErrNoSnapshot.
func (f *FaultySnapshotStore) Load(id string) (*server.SessionSnapshot, error) {
	if corrupt, draw := f.inj.planLoad(id); corrupt && f.raw != nil {
		// Best-effort: an absent file has no bits to rot.
		_ = f.corruptRaw(id, draw)
	}
	return f.inner.Load(id)
}

// Delete implements server.SnapshotStore (passthrough).
func (f *FaultySnapshotStore) Delete(id string) error { return f.inner.Delete(id) }

// CorruptNow deterministically flips one bit of id's stored snapshot,
// regardless of fault rates — the scripted "snapshot corruption" event of
// a chaos schedule. draw seeds the bit choice.
func (f *FaultySnapshotStore) CorruptNow(id string, draw uint64) error {
	if f.raw == nil {
		return fmt.Errorf("chaos: store for %q has no raw access", id)
	}
	return f.corruptRaw(id, draw)
}

// corruptRaw flips the low bit of a draw-chosen digit byte (falling back
// to any byte), turning one stored numeral into another — valid JSON,
// wrong data, exactly what only a checksum can catch.
func (f *FaultySnapshotStore) corruptRaw(id string, draw uint64) error {
	buf, err := f.raw.LoadRaw(id)
	if err != nil {
		return err
	}
	if len(buf) == 0 {
		return fmt.Errorf("chaos: snapshot %q empty", id)
	}
	start := int(draw % uint64(len(buf)))
	idx := start
	for i := 0; i < len(buf); i++ {
		j := (start + i) % len(buf)
		if buf[j] >= '1' && buf[j] <= '8' {
			idx = j
			break
		}
	}
	buf[idx] ^= 1
	return f.raw.SaveRaw(id, buf)
}
