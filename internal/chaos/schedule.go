package chaos

import (
	"fmt"
	"sort"

	"rebudget/internal/numeric"
)

// EventKind enumerates the scripted chaos events a Schedule can carry.
type EventKind int

// Schedule event kinds.
const (
	// EventPartition cuts a shard's data path (Transport.Partition).
	EventPartition EventKind = iota
	// EventHeal ends a partition.
	EventHeal
	// EventKillShard stops a shard process mid-traffic.
	EventKillShard
	// EventRestartShard brings a killed shard back on its old address.
	EventRestartShard
	// EventLatencySpike turns the injected-latency rate up.
	EventLatencySpike
	// EventLatencyNormal ends a latency spike.
	EventLatencyNormal
	// EventCorruptSnapshot flips a bit in one session's stored snapshot.
	EventCorruptSnapshot
	// EventAddShard grows the serving tier by one shard mid-run —
	// deliberately placed inside an outage window, so elastic rebalance is
	// exercised while the fleet is already degraded.
	EventAddShard
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	case EventKillShard:
		return "kill"
	case EventRestartShard:
		return "restart"
	case EventLatencySpike:
		return "latency-spike"
	case EventLatencyNormal:
		return "latency-normal"
	case EventCorruptSnapshot:
		return "corrupt-snapshot"
	case EventAddShard:
		return "add-shard"
	default:
		return "unknown"
	}
}

// Event is one scripted fault: at driver step Step, do Kind to Shard (or
// to Session, for snapshot corruption). Draw seeds any per-event
// randomness (which bit to flip).
type Event struct {
	Step    int
	Kind    EventKind
	Shard   int
	Session string
	Draw    uint64
}

// String renders the event for logs and the -print-schedule diff check.
func (e Event) String() string {
	switch e.Kind {
	case EventCorruptSnapshot:
		return fmt.Sprintf("step %4d: %s session=%s draw=%d", e.Step, e.Kind, e.Session, e.Draw)
	case EventLatencySpike, EventLatencyNormal:
		return fmt.Sprintf("step %4d: %s", e.Step, e.Kind)
	default:
		return fmt.Sprintf("step %4d: %s shard=%d", e.Step, e.Kind, e.Shard)
	}
}

// ScheduleConfig sizes a generated chaos schedule.
type ScheduleConfig struct {
	// Seed drives the generator (default 1). Same seed, same schedule.
	Seed uint64
	// Steps is the driver-loop length the events are placed into.
	Steps int
	// Shards is how many shards exist to disturb.
	Shards int
	// Sessions are the ids eligible for snapshot corruption.
	Sessions []string
	// Partitions is how many partition windows to script (default 1).
	Partitions int
	// PartitionLen is each partition's length in steps (default Steps/8).
	PartitionLen int
	// Kills is how many kill/restart windows to script (default 1).
	Kills int
	// KillLen is each kill's downtime in steps (default Steps/8).
	KillLen int
	// LatencySpikes is how many latency-spike windows (default 1).
	LatencySpikes int
	// SpikeLen is each spike's length in steps (default Steps/8).
	SpikeLen int
	// Corruptions is how many snapshot-corruption events (default 1, 0
	// when Sessions is empty).
	Corruptions int
	// ShardAdds is how many mid-run shard additions to script (default 0
	// — opt-in, so pre-elastic schedules stay bit-identical seed for
	// seed: with ShardAdds zero the generator draws nothing extra).
	ShardAdds int
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.Kills == 0 {
		c.Kills = 1
	}
	if c.LatencySpikes == 0 {
		c.LatencySpikes = 1
	}
	if c.Corruptions == 0 && len(c.Sessions) > 0 {
		c.Corruptions = 1
	}
	winLen := c.Steps / 8
	if winLen < 2 {
		winLen = 2
	}
	if c.PartitionLen <= 0 {
		c.PartitionLen = winLen
	}
	if c.KillLen <= 0 {
		c.KillLen = winLen
	}
	if c.SpikeLen <= 0 {
		c.SpikeLen = winLen
	}
	return c
}

// NewSchedule generates a deterministic chaos schedule: partition, kill
// and latency windows plus point corruption events, placed so that shard-
// disturbance windows (partitions, kills) never overlap each other — at
// every step at least Shards-1 shards have an intact data path, which is
// what makes "zero lost sessions" a fair invariant to assert. The same
// ScheduleConfig always yields the same schedule; events come back sorted
// by step (stable on kind).
func NewSchedule(cfg ScheduleConfig) []Event {
	cfg = cfg.withDefaults()
	if cfg.Steps < 8 || cfg.Shards < 1 {
		return nil
	}
	rng := numeric.NewRand(cfg.Seed)
	var events []Event
	// disturbed marks steps already inside a shard-disturbance window
	// (with one step of padding so heal/kill never collide on a step).
	disturbed := make([]bool, cfg.Steps)
	place := func(length int) (int, bool) {
		// Seeded first-fit with retries keeps placement deterministic.
		for try := 0; try < 32; try++ {
			maxStart := cfg.Steps - length - 1
			if maxStart < 1 {
				return 0, false
			}
			start := 1 + rng.Intn(maxStart)
			free := true
			for s := start - 1; s <= start+length && s < cfg.Steps; s++ {
				if s >= 0 && disturbed[s] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for s := start; s < start+length; s++ {
				disturbed[s] = true
			}
			return start, true
		}
		return 0, false
	}

	for i := 0; i < cfg.Partitions; i++ {
		shard := rng.Intn(cfg.Shards)
		if start, ok := place(cfg.PartitionLen); ok {
			events = append(events,
				Event{Step: start, Kind: EventPartition, Shard: shard},
				Event{Step: start + cfg.PartitionLen, Kind: EventHeal, Shard: shard})
		}
	}
	for i := 0; i < cfg.Kills; i++ {
		shard := rng.Intn(cfg.Shards)
		if start, ok := place(cfg.KillLen); ok {
			events = append(events,
				Event{Step: start, Kind: EventKillShard, Shard: shard},
				Event{Step: start + cfg.KillLen, Kind: EventRestartShard, Shard: shard})
		}
	}
	// Latency spikes and corruption are not shard outages; they may land
	// anywhere, including on top of each other.
	for i := 0; i < cfg.LatencySpikes; i++ {
		maxStart := cfg.Steps - cfg.SpikeLen - 1
		if maxStart < 1 {
			break
		}
		start := 1 + rng.Intn(maxStart)
		events = append(events,
			Event{Step: start, Kind: EventLatencySpike},
			Event{Step: start + cfg.SpikeLen, Kind: EventLatencyNormal})
	}
	for i := 0; i < cfg.Corruptions && len(cfg.Sessions) > 0; i++ {
		events = append(events, Event{
			Step:    1 + rng.Intn(cfg.Steps-1),
			Kind:    EventCorruptSnapshot,
			Session: cfg.Sessions[rng.Intn(len(cfg.Sessions))],
			Draw:    rng.Uint64(),
		})
	}
	// Shard adds draw last: every pre-elastic schedule (ShardAdds 0) sees
	// the exact rng stream it always did. Each add lands inside an outage
	// window when one exists — growing the fleet while it is degraded is
	// the hard case — and the Shard field names the new member's index.
	for i := 0; i < cfg.ShardAdds; i++ {
		step := 1 + rng.Intn(cfg.Steps-1)
		if windows := outageWindows(events); len(windows) > 0 {
			w := windows[rng.Intn(len(windows))]
			if w.len > 1 {
				step = w.start + 1 + rng.Intn(w.len-1)
			} else {
				step = w.start
			}
		}
		events = append(events, Event{Step: step, Kind: EventAddShard, Shard: cfg.Shards + i})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	return events
}

// outageWindows lists the [start, start+len) spans where a shard is
// partitioned or down, in generation order.
func outageWindows(events []Event) []struct{ start, len int } {
	var out []struct{ start, len int }
	open := make(map[int]int) // shard -> start step, per outage kind pairing
	for _, e := range events {
		switch e.Kind {
		case EventPartition, EventKillShard:
			open[e.Shard] = e.Step
		case EventHeal, EventRestartShard:
			if s, ok := open[e.Shard]; ok {
				out = append(out, struct{ start, len int }{s, e.Step - s})
				delete(open, e.Shard)
			}
		}
	}
	return out
}
