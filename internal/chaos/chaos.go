// Package chaos is deterministic fault injection for the serving tier —
// internal/fault's seeded-determinism design lifted one level up, from the
// allocation pipeline to the distributed system around it. Where
// internal/fault corrupts monitor curves and stalls equilibrium solvers,
// this package breaks the network and the disk: a chaos http.RoundTripper
// (Transport) injects latency, connection resets mid-body, 5xx blips and
// full per-shard partitions into the router's proxy path or a client, and
// a FaultySnapshotStore wraps any SnapshotStore with torn writes, EIO on
// save and bit-rot on load.
//
// Everything is driven by per-target xorshift streams derived from one
// seed, so a given (Config, per-target call sequence) always injects the
// same faults — a failing chaos soak reproduces from its seed alone. The
// framework is wired in behind nil checks exactly like internal/fault: a
// disabled Config builds no injector, draws no random numbers, and leaves
// every code path byte-identical to a build without chaos.
package chaos

import (
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"rebudget/internal/numeric"
)

// Injected-fault sentinel errors. Callers (and tests) can errors.Is against
// these to tell a chaos-made failure from a real one.
var (
	// ErrPartitioned is a request dropped by a full network partition.
	ErrPartitioned = errors.New("chaos: host partitioned")
	// ErrReset is a connection reset injected mid-response-body.
	ErrReset = errors.New("chaos: connection reset mid-body")
	// ErrDropped is a connection refused before the request was sent.
	ErrDropped = errors.New("chaos: connection dropped")
	// ErrInjectedIO is a synthetic disk error (EIO) from the faulty
	// snapshot store.
	ErrInjectedIO = errors.New("chaos: injected I/O error")
)

// Config selects fault rates. The zero value disables everything.
type Config struct {
	// Seed drives every per-target random stream (default 1).
	Seed uint64

	// LatencyRate is the per-request probability of an injected delay,
	// uniform in [LatencyMin, LatencyMax] (defaults 2ms–25ms).
	LatencyRate float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// DropRate is the per-request probability the connection is refused
	// before the request is sent (the shard never sees it — safe for the
	// router to retry on the next ring position).
	DropRate float64
	// Blip5xxRate is the per-request probability of a synthesized 503
	// answered without reaching the backend (a flaky middlebox; the
	// "shard answered", so proxies pass it through rather than retry).
	Blip5xxRate float64
	// ResetRate is the per-request probability the response body is cut
	// by a connection reset mid-stream — after the status and headers
	// were already committed, the nastiest spot.
	ResetRate float64

	// SaveEIORate is the per-save probability the snapshot store answers
	// a synthetic EIO without touching the disk.
	SaveEIORate float64
	// TornWriteRate is the per-save probability the snapshot lands torn:
	// the write happens but the stored bytes are truncated mid-file, as
	// if power died between write and fsync.
	TornWriteRate float64
	// LoadCorruptRate is the per-load probability one stored bit flips
	// before the read — storage rot surfacing at the worst time.
	LoadCorruptRate float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatencyMin <= 0 {
		c.LatencyMin = 2 * time.Millisecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = 25 * time.Millisecond
		if c.LatencyMax < c.LatencyMin {
			c.LatencyMax = c.LatencyMin
		}
	}
	return c
}

// Enabled reports whether any fault rate is non-zero.
func (c Config) Enabled() bool {
	return c.LatencyRate > 0 || c.DropRate > 0 || c.Blip5xxRate > 0 ||
		c.ResetRate > 0 || c.SaveEIORate > 0 || c.TornWriteRate > 0 ||
		c.LoadCorruptRate > 0
}

// Stats counts the faults an injector has actually fired.
type Stats struct {
	Latencies      int // requests delayed
	Drops          int // connections refused pre-send
	Blips5xx       int // synthesized 5xx responses
	Resets         int // responses cut mid-body
	PartitionDrops int // requests eaten by an explicit partition
	SaveEIO        int // snapshot saves failed with injected EIO
	TornWrites     int // snapshot saves landed truncated
	LoadCorrupt    int // snapshot loads preceded by a bit flip
}

// Injector owns the seeded random streams behind every chaos component.
// All methods are safe for a nil receiver (no-ops) and for concurrent use.
//
// Determinism contract (matching internal/fault): each target (a backend
// host for the transport, a session id for the snapshot store) gets its
// own stream, derived from (Seed, target) alone — independent of creation
// order or interleaving across targets. The k-th draw for a target is
// therefore the same in every run that makes the same k calls against it.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	streams map[string]*numeric.Rand
	stats   Stats
}

// New builds an injector, or returns nil for a disabled Config so callers
// can gate every hook on a simple nil check.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg.withDefaults(), streams: make(map[string]*numeric.Rand)}
}

// Stats returns a snapshot of the fired-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// stream returns the target's private generator, creating it on first use.
// Callers must hold in.mu.
func (in *Injector) stream(target string) *numeric.Rand {
	r, ok := in.streams[target]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(target))
		r = numeric.NewRand(in.cfg.Seed ^ h.Sum64())
		in.streams[target] = r
	}
	return r
}

// transportPlan is one request's worth of fault decisions, drawn atomically
// in a fixed order so the per-host stream stays aligned.
type transportPlan struct {
	latency time.Duration // 0: none
	drop    bool
	blip    bool
	reset   bool
}

// planRequest draws the fault plan for one request against host.
func (in *Injector) planRequest(host string) transportPlan {
	var p transportPlan
	if in == nil {
		return p
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("net:" + host)
	if r.Float64() < in.cfg.LatencyRate {
		span := float64(in.cfg.LatencyMax - in.cfg.LatencyMin)
		p.latency = in.cfg.LatencyMin + time.Duration(r.Float64()*span)
		in.stats.Latencies++
	}
	if r.Float64() < in.cfg.DropRate {
		p.drop = true
		in.stats.Drops++
	}
	if r.Float64() < in.cfg.Blip5xxRate {
		p.blip = true
		in.stats.Blips5xx++
	}
	if r.Float64() < in.cfg.ResetRate {
		p.reset = true
		in.stats.Resets++
	}
	return p
}

// SetLatencyRate adjusts the injected-latency probability at runtime —
// the scripted latency-spike events of a chaos schedule. Determinism is
// preserved as long as the rate changes happen at the same points of the
// per-target call sequence: the schedule pins them to driver steps, so a
// soak re-run from the same seed flips the rate at the same places.
func (in *Injector) SetLatencyRate(rate float64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cfg.LatencyRate = rate
	in.mu.Unlock()
}

// notePartitionDrop counts a request eaten by an explicit partition.
func (in *Injector) notePartitionDrop() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.stats.PartitionDrops++
	in.mu.Unlock()
}

// diskPlan is one snapshot operation's fault decision.
type diskPlan struct {
	eio  bool
	torn bool
	// tornAt is the truncation point as a fraction of the file (0.25–0.75).
	tornAt float64
}

// planSave draws the fault plan for one snapshot save of id.
func (in *Injector) planSave(id string) diskPlan {
	var p diskPlan
	if in == nil {
		return p
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("disk:" + id)
	if r.Float64() < in.cfg.SaveEIORate {
		p.eio = true
		in.stats.SaveEIO++
	}
	if r.Float64() < in.cfg.TornWriteRate {
		p.torn = true
		p.tornAt = 0.25 + 0.5*r.Float64()
		in.stats.TornWrites++
	}
	return p
}

// planLoad reports whether this load of id should flip a stored bit first,
// and with which draw value (used to pick the bit).
func (in *Injector) planLoad(id string) (corrupt bool, draw uint64) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.stream("disk:" + id)
	if r.Float64() < in.cfg.LoadCorruptRate {
		in.stats.LoadCorrupt++
		return true, r.Uint64()
	}
	return false, 0
}
