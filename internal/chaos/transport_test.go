package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, c *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp, body, rerr
}

// A transport with a nil injector and no partitions is a passthrough.
func TestTransportPassthrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer ts.Close()
	c := &http.Client{Transport: NewTransport(nil, nil)}
	resp, body, err := get(t, c, ts.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != "payload" {
		t.Fatalf("passthrough broken: %v %v %q", resp, err, body)
	}
}

// Partition/Heal cut and restore one host's data path; other hosts are
// untouched; partition drops are counted.
func TestTransportPartition(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") })
	tsA := httptest.NewServer(handler)
	defer tsA.Close()
	tsB := httptest.NewServer(handler)
	defer tsB.Close()

	in := New(Config{LatencyRate: 1e-12}) // enabled, but effectively silent
	tr := NewTransport(in, nil)
	c := &http.Client{Transport: tr}

	tr.Partition(tsA.URL) // base-URL form must normalise to the host
	if !tr.Partitioned(strings.TrimPrefix(tsA.URL, "http://")) {
		t.Fatal("host-key normalisation broken")
	}
	if _, _, err := get(t, c, tsA.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned host should fail with ErrPartitioned, got %v", err)
	}
	if _, _, err := get(t, c, tsB.URL); err != nil {
		t.Fatalf("unpartitioned host affected: %v", err)
	}
	tr.Heal(tsA.URL)
	if _, _, err := get(t, c, tsA.URL); err != nil {
		t.Fatalf("healed host still failing: %v", err)
	}
	if in.Stats().PartitionDrops != 1 {
		t.Fatalf("partition drops = %d, want 1", in.Stats().PartitionDrops)
	}
}

// Rate-1 faults fire on every request: drops pre-send, blips without
// touching the backend, resets mid-body after a committed status.
func TestTransportInjectedFaults(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	defer ts.Close()

	t.Run("drop", func(t *testing.T) {
		c := &http.Client{Transport: NewTransport(New(Config{DropRate: 1}), nil)}
		if _, _, err := get(t, c, ts.URL); !errors.Is(err, ErrDropped) {
			t.Fatalf("want ErrDropped, got %v", err)
		}
	})
	t.Run("blip", func(t *testing.T) {
		before := hits
		c := &http.Client{Transport: NewTransport(New(Config{Blip5xxRate: 1}), nil)}
		resp, body, err := get(t, c, ts.URL)
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("want synthesized 503, got %v %v", resp, err)
		}
		if !strings.Contains(string(body), "chaos") || resp.Header.Get("X-Chaos") == "" {
			t.Fatalf("blip body/header missing: %q", body)
		}
		if hits != before {
			t.Fatal("blip reached the backend")
		}
	})
	t.Run("reset-mid-body", func(t *testing.T) {
		c := &http.Client{Transport: NewTransport(New(Config{ResetRate: 1}), nil)}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatalf("reset must land after the status was committed, got %v", err)
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		if !errors.Is(rerr, ErrReset) {
			t.Fatalf("want ErrReset mid-body, got %v", rerr)
		}
		if len(body) == 0 || len(body) >= 4096 {
			t.Fatalf("reset cut nothing or everything: %d bytes", len(body))
		}
	})
}
