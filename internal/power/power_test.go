package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevels(t *testing.T) {
	ls := Levels()
	if len(ls) != 9 {
		t.Fatalf("expected 9 DVFS levels, got %d: %v", len(ls), ls)
	}
	if ls[0] != 0.8 || ls[len(ls)-1] != 4.0 {
		t.Errorf("ladder endpoints wrong: %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if math.Abs(ls[i]-ls[i-1]-0.4) > 1e-9 {
			t.Errorf("ladder step wrong between %g and %g", ls[i-1], ls[i])
		}
	}
}

func TestVoltage(t *testing.T) {
	if Voltage(0.8) != 0.8 || Voltage(4.0) != 1.2 {
		t.Error("voltage endpoints wrong")
	}
	if Voltage(0.1) != 0.8 || Voltage(9) != 1.2 {
		t.Error("voltage should clamp outside the ladder")
	}
	mid := Voltage(2.4)
	if math.Abs(mid-1.0) > 1e-9 {
		t.Errorf("Voltage(2.4) = %g, want 1.0", mid)
	}
}

func TestDynamicPowerScaling(t *testing.T) {
	m := DefaultModel()
	// Power strictly increases with frequency (V also rises).
	prev := 0.0
	for _, f := range Levels() {
		p := m.Dynamic(f, 1)
		if p <= prev {
			t.Errorf("dynamic power not increasing at %g GHz", f)
		}
		prev = p
	}
	// Activity scales linearly.
	if math.Abs(m.Dynamic(2.0, 0.5)-0.5*m.Dynamic(2.0, 1)) > 1e-12 {
		t.Error("activity should scale dynamic power linearly")
	}
}

func TestDefaultModelPowerScarcity(t *testing.T) {
	m := DefaultModel()
	// Full throttle must exceed the per-core TDP share (≈1.5×), so the
	// chip power budget actually constrains frequency choices.
	p := m.Total(MaxFreqGHz, 1, 70)
	if p < 1.4*TDPPerCoreW || p > 2.0*TDPPerCoreW {
		t.Errorf("full-throttle power = %.2f W, want ≈1.9× the %g W TDP share", p, TDPPerCoreW)
	}
	// Minimum frequency power must be well below an equal share of TDP so
	// the free minimum allocation (§4.1) is always affordable.
	pmin := m.Total(MinFreqGHz, 1, 70)
	if pmin > 2.0 {
		t.Errorf("min-frequency power = %.2f W, too high for the free floor", pmin)
	}
}

func TestStaticPowerTemperatureDependence(t *testing.T) {
	m := DefaultModel()
	cold := m.Static(4.0, 40)
	hot := m.Static(4.0, 90)
	if hot <= cold {
		t.Error("leakage must grow with temperature")
	}
	ratio := hot / cold
	want := math.Exp((90.0 - 40.0) / m.TempScaleC)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("leakage ratio = %g, want %g", ratio, want)
	}
}

func TestFreqAtPowerInvertsTotal(t *testing.T) {
	m := DefaultModel()
	for _, f := range []float64{0.9, 1.7, 2.5, 3.3, 3.9} {
		budget := m.Total(f, 0.8, 65)
		got, err := m.FreqAtPower(budget, 0.8, 65)
		if err != nil {
			t.Fatalf("FreqAtPower(%g): %v", budget, err)
		}
		if math.Abs(got-f) > 1e-6 {
			t.Errorf("FreqAtPower inverse = %g, want %g", got, f)
		}
	}
}

func TestFreqAtPowerBounds(t *testing.T) {
	m := DefaultModel()
	if _, err := m.FreqAtPower(0.01, 1, 70); err == nil {
		t.Error("impossible budget accepted")
	}
	got, err := m.FreqAtPower(1000, 1, 70)
	if err != nil || got != MaxFreqGHz {
		t.Errorf("huge budget should give max frequency, got %g err %v", got, err)
	}
}

func TestQuantizeFreq(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.8}, {0.8, 0.8}, {1.0, 0.8}, {1.2, 1.2}, {1.19, 0.8},
		{2.75, 2.4}, {4.0, 4.0}, {5.0, 4.0}, {3.99, 3.6},
	}
	for _, c := range cases {
		if got := QuantizeFreq(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QuantizeFreq(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestQuantizeBudget(t *testing.T) {
	if QuantizeBudget(-1) != 0 {
		t.Error("negative budget should clamp to 0")
	}
	if got := QuantizeBudget(1.3); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("QuantizeBudget(1.3) = %g, want 1.25", got)
	}
	if got := QuantizeBudget(2.0); got != 2.0 {
		t.Errorf("QuantizeBudget(2.0) = %g", got)
	}
}

// Property: FreqAtPower result's power never exceeds the budget, and a
// higher budget never yields a lower frequency.
func TestFreqAtPowerProperties(t *testing.T) {
	m := DefaultModel()
	f := func(b1, b2, act, temp float64) bool {
		act = 0.2 + math.Abs(math.Mod(act, 0.8))
		temp = 40 + math.Abs(math.Mod(temp, 50))
		floor := m.Total(MinFreqGHz, act, temp)
		b1 = floor + math.Abs(math.Mod(b1, 12))
		b2 = floor + math.Abs(math.Mod(b2, 12))
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		f1, err1 := m.FreqAtPower(b1, act, temp)
		f2, err2 := m.FreqAtPower(b2, act, temp)
		if err1 != nil || err2 != nil {
			return false
		}
		if m.Total(f1, act, temp) > b1+1e-6 {
			return false
		}
		return f1 <= f2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
