// Package power models per-core DVFS and chip power in the style of the
// paper's setup: Wattch-like dynamic power proportional to C·V²·f on a
// 0.8–4.0 GHz ladder with 0.8–1.2 V scaling, plus Sandy-Bridge-style static
// power modelled as a fraction of dynamic power that grows exponentially
// with temperature (§5.1). Power is a continuous market resource (RAPL sets
// budgets at 0.125 W granularity), so the package exposes both the discrete
// DVFS ladder and continuous inverse lookups.
package power

import (
	"fmt"
	"math"
)

// DVFS ladder constants (Table 1).
const (
	MinFreqGHz = 0.8
	MaxFreqGHz = 4.0
	FreqStep   = 0.4 // 9 discrete operating points: 0.8, 1.2, …, 4.0
	MinVolt    = 0.8
	MaxVolt    = 1.2
	// TDPPerCoreW is the chip power budget per core (10 W at 65 nm).
	TDPPerCoreW = 10.0
	// RAPLGranularityW is the finest power-budget step (§4.1.1).
	RAPLGranularityW = 0.125
)

// Model captures a core's electrical parameters. The zero value is not
// usable; use DefaultModel or fill all fields.
type Model struct {
	// CeffnF is the effective switched capacitance in nanofarads,
	// scaled by the workload's activity factor at full throttle.
	CeffnF float64
	// StaticFrac0 is the static/dynamic power fraction at ReferenceTempC.
	StaticFrac0 float64
	// ReferenceTempC and TempScaleC shape the exponential temperature
	// dependence of leakage: frac(T) = StaticFrac0·exp((T-Ref)/Scale).
	ReferenceTempC float64
	TempScaleC     float64
}

// DefaultModel is calibrated so a fully active core at 4.0 GHz, 1.2 V and
// 70 °C consumes ≈19 W — nearly twice the 10 W per-core TDP share, as on
// real power-limited chips (PL2 ≈ 2× PL1). The gap is what makes the power
// budget a scarce, market-worthy resource: not every core can run at
// maximum frequency within the chip's TDP (§5.1).
func DefaultModel() Model {
	return Model{
		CeffnF:         2.50,
		StaticFrac0:    0.30,
		ReferenceTempC: 70,
		TempScaleC:     35,
	}
}

// Levels returns the discrete DVFS operating frequencies in GHz, ascending.
func Levels() []float64 {
	var out []float64
	for f := MinFreqGHz; f <= MaxFreqGHz+1e-9; f += FreqStep {
		out = append(out, math.Round(f*10)/10)
	}
	return out
}

// Voltage returns the supply voltage for a (possibly non-ladder) frequency,
// interpolated linearly between the ladder endpoints and clamped.
func Voltage(fGHz float64) float64 {
	if fGHz <= MinFreqGHz {
		return MinVolt
	}
	if fGHz >= MaxFreqGHz {
		return MaxVolt
	}
	t := (fGHz - MinFreqGHz) / (MaxFreqGHz - MinFreqGHz)
	return MinVolt + t*(MaxVolt-MinVolt)
}

// Dynamic returns the dynamic power in watts at frequency fGHz for a
// workload with the given activity factor in [0,1].
func (m Model) Dynamic(fGHz, activity float64) float64 {
	v := Voltage(fGHz)
	// C[nF]·V²·f[GHz] happens to come out in watts (1e-9 F × 1e9 Hz).
	return m.CeffnF * v * v * fGHz * activity
}

// Static returns the leakage power in watts at frequency fGHz and die
// temperature tempC. Leakage scales with the dynamic power envelope at the
// current voltage (a common simplification of the V·exp(T) dependence).
func (m Model) Static(fGHz, tempC float64) float64 {
	frac := m.StaticFrac0 * math.Exp((tempC-m.ReferenceTempC)/m.TempScaleC)
	return frac * m.Dynamic(fGHz, 1)
}

// Total returns dynamic plus static power in watts.
func (m Model) Total(fGHz, activity, tempC float64) float64 {
	return m.Dynamic(fGHz, activity) + m.Static(fGHz, tempC)
}

// FreqAtPower returns the highest continuous frequency in
// [MinFreqGHz, MaxFreqGHz] whose total power does not exceed budgetW, or an
// error if even the minimum frequency needs more than budgetW. Total power
// is strictly increasing in frequency, so bisection suffices.
func (m Model) FreqAtPower(budgetW, activity, tempC float64) (float64, error) {
	if m.Total(MinFreqGHz, activity, tempC) > budgetW {
		return 0, fmt.Errorf("power: budget %.3f W below minimum-frequency power %.3f W",
			budgetW, m.Total(MinFreqGHz, activity, tempC))
	}
	if m.Total(MaxFreqGHz, activity, tempC) <= budgetW {
		return MaxFreqGHz, nil
	}
	return m.bisectFreq(budgetW, activity, tempC), nil
}

// bisectFreq is the bounded bisection for Total(f) = budgetW, with the
// invariants Total(lo) ≤ budgetW < Total(hi) established by the caller.
// Once mid collides with an endpoint the remaining iterations cannot move
// lo (Total(lo) ≤ budget keeps lo fixed; Total(hi) > budget keeps hi
// fixed), so breaking early returns the bit-identical result of running
// all 60 rounds while skipping the no-op tail.
func (m Model) bisectFreq(budgetW, activity, tempC float64) float64 {
	lo, hi := MinFreqGHz, MaxFreqGHz
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if m.Total(mid, activity, tempC) <= budgetW {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// FreqInverter answers repeated FreqAtPower queries for one fixed
// (activity, temperature) operating point — the shape of every utility-model
// evaluation, which probes many power budgets at the reference temperature.
// It hoists the DVFS-range boundary powers out of the per-call path, so
// budgets that clamp to the top or bottom of the ladder cost no Total
// evaluations at all. Results are bit-identical to Model.FreqAtPower.
type FreqInverter struct {
	m        Model
	activity float64
	tempC    float64
	minW     float64 // Total at MinFreqGHz
	maxW     float64 // Total at MaxFreqGHz
}

// NewFreqInverter builds an inverter for the operating point.
func (m Model) NewFreqInverter(activity, tempC float64) *FreqInverter {
	return &FreqInverter{
		m:        m,
		activity: activity,
		tempC:    tempC,
		minW:     m.Total(MinFreqGHz, activity, tempC),
		maxW:     m.Total(MaxFreqGHz, activity, tempC),
	}
}

// FreqAtPower mirrors Model.FreqAtPower at the inverter's operating point.
func (v *FreqInverter) FreqAtPower(budgetW float64) (float64, error) {
	if v.minW > budgetW {
		return 0, fmt.Errorf("power: budget %.3f W below minimum-frequency power %.3f W",
			budgetW, v.minW)
	}
	if v.maxW <= budgetW {
		return MaxFreqGHz, nil
	}
	return v.m.bisectFreq(budgetW, v.activity, v.tempC), nil
}

// QuantizeFreq snaps a continuous frequency down to the DVFS ladder.
func QuantizeFreq(fGHz float64) float64 {
	if fGHz <= MinFreqGHz {
		return MinFreqGHz
	}
	if fGHz >= MaxFreqGHz {
		return MaxFreqGHz
	}
	// The epsilon absorbs binary rounding of ladder frequencies (1.2-0.8
	// is not exactly 0.4 in float64).
	steps := math.Floor((fGHz-MinFreqGHz)/FreqStep + 1e-9)
	return math.Round((MinFreqGHz+steps*FreqStep)*10) / 10
}

// QuantizeBudget snaps a power budget down to RAPL granularity.
func QuantizeBudget(w float64) float64 {
	if w < 0 {
		return 0
	}
	return math.Floor(w/RAPLGranularityW) * RAPLGranularityW
}
