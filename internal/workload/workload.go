// Package workload constructs the paper's multiprogrammed bundles (§5):
// the 24 catalog applications are grouped by sensitivity class and combined
// into six bundle categories; each category fixes how many of a bundle's
// cores run applications of each class, and bundle members are drawn at
// random from their class.
package workload

import (
	"fmt"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/dram"
	"rebudget/internal/numeric"
	"rebudget/internal/power"
)

// Category names follow the paper: each letter claims a quarter of the
// bundle's cores for one application class.
type Category string

// The six evaluated categories (§5).
const (
	CPBN Category = "CPBN"
	CCPP Category = "CCPP"
	CPBB Category = "CPBB"
	BBNN Category = "BBNN"
	BBPN Category = "BBPN"
	BBCN Category = "BBCN"
)

// Categories returns all six categories in the paper's order.
func Categories() []Category {
	return []Category{CPBN, CCPP, CPBB, BBNN, BBPN, BBCN}
}

func classOfLetter(r rune) (app.Class, error) {
	switch r {
	case 'C':
		return app.Cache, nil
	case 'P':
		return app.Power, nil
	case 'B':
		return app.Both, nil
	case 'N':
		return app.None, nil
	default:
		return 0, fmt.Errorf("workload: unknown class letter %q", r)
	}
}

// ClassCounts expands a category into per-class application counts for a
// bundle of the given core count (which must be divisible by 4).
func (c Category) ClassCounts(cores int) (map[app.Class]int, error) {
	if len(c) != 4 {
		return nil, fmt.Errorf("workload: category %q must have 4 letters", c)
	}
	if cores < 4 || cores%4 != 0 {
		return nil, fmt.Errorf("workload: core count %d not divisible by 4", cores)
	}
	per := cores / 4
	out := map[app.Class]int{}
	for _, r := range string(c) {
		cl, err := classOfLetter(r)
		if err != nil {
			return nil, err
		}
		out[cl] += per
	}
	return out, nil
}

// Bundle is one multiprogrammed workload: an application per core.
type Bundle struct {
	Category Category
	Apps     []app.Spec
}

// Generate draws one random bundle of the category for the given core
// count. Applications are selected uniformly (with replacement) from their
// class, mirroring the paper's random construction.
func Generate(cat Category, cores int, rng *numeric.Rand) (Bundle, error) {
	counts, err := cat.ClassCounts(cores)
	if err != nil {
		return Bundle{}, err
	}
	byClass := app.ByClass()
	b := Bundle{Category: cat}
	for _, cl := range []app.Class{app.Cache, app.Power, app.Both, app.None} {
		pool := byClass[cl]
		for k := 0; k < counts[cl]; k++ {
			b.Apps = append(b.Apps, pool[rng.Intn(len(pool))])
		}
	}
	return b, nil
}

// GenerateAll reproduces the full §5 sweep: perCategory random bundles for
// each of the six categories, deterministically from the seed.
func GenerateAll(cores, perCategory int, seed uint64) ([]Bundle, error) {
	rng := numeric.NewRand(seed)
	var out []Bundle
	for _, cat := range Categories() {
		for k := 0; k < perCategory; k++ {
			b, err := Generate(cat, cores, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
	}
	return out, nil
}

// Figure3Bundle is the 8-core CPBB ("BBPC") bundle §6.1.1 examines: apsi×2,
// swim×2, mcf×2, hmmer and sixtrack.
func Figure3Bundle() (Bundle, error) {
	names := []string{"apsi", "apsi", "swim", "swim", "mcf", "mcf", "hmmer", "sixtrack"}
	b := Bundle{Category: CPBB}
	for _, n := range names {
		s, err := app.Lookup(n)
		if err != nil {
			return Bundle{}, err
		}
		b.Apps = append(b.Apps, s)
	}
	return b, nil
}

// Setup is an analytically-modelled market instance for a bundle: player
// specs with Talus-convexified utilities, plus the market capacities
// (regions and watts beyond the per-core free floors).
type Setup struct {
	Bundle    Bundle
	Capacity  []float64 // [Δregions, Δwatts]
	Players   []core.PlayerSpec
	Models    []*app.Model
	Utilities []*app.Utility
}

// NewSetup profiles every bundle member analytically (phase-1 methodology,
// §6) and assembles the market.
func NewSetup(b Bundle) (*Setup, error) {
	n := len(b.Apps)
	if n == 0 {
		return nil, fmt.Errorf("workload: empty bundle")
	}
	s := &Setup{Bundle: b}
	totalFloorW := 0.0
	for i, spec := range b.Apps {
		m := app.NewModel(spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			return nil, err
		}
		u, err := app.NewUtility(m, curve)
		if err != nil {
			return nil, err
		}
		s.Models = append(s.Models, m)
		s.Utilities = append(s.Utilities, u)
		totalFloorW += u.FloorPowerW()
		s.Players = append(s.Players, core.PlayerSpec{
			Name:     fmt.Sprintf("%s#%d", spec.Name, i),
			Utility:  u,
			MaxAlloc: u.MaxUsefulAlloc(),
			MinAlloc: u.MinAlloc(),
		})
	}
	// Each core contributes 512 kB (4 regions) of L2 and 10 W of TDP;
	// one region per core and the 800 MHz power floor are handed out for
	// free (§4.1), the rest is the market's to allocate.
	regions := float64(3 * n)
	watts := power.TDPPerCoreW*float64(n) - totalFloorW
	if watts <= 0 {
		return nil, fmt.Errorf("workload: power floors exhaust the TDP")
	}
	s.Capacity = []float64{regions, watts}
	return s, nil
}

// NewSetupWithBandwidth builds a three-resource market for the bundle:
// cache regions, watts, and memory bandwidth (GB/s) beyond the per-core
// floors. It exercises the framework's general M-resource form (§2); the
// paper's evaluation stops at two.
func NewSetupWithBandwidth(b Bundle) (*Setup, error) {
	n := len(b.Apps)
	if n == 0 {
		return nil, fmt.Errorf("workload: empty bundle")
	}
	s := &Setup{Bundle: b}
	totalFloorW := 0.0
	for i, spec := range b.Apps {
		m := app.NewModel(spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			return nil, err
		}
		u, err := app.NewBandwidthUtility(m, curve)
		if err != nil {
			return nil, err
		}
		s.Models = append(s.Models, m)
		totalFloorW += u.FloorPowerW()
		s.Players = append(s.Players, core.PlayerSpec{
			Name:     fmt.Sprintf("%s#%d", spec.Name, i),
			Utility:  u,
			MaxAlloc: u.MaxUsefulAlloc(),
			MinAlloc: u.MinAlloc(),
		})
	}
	regions := float64(3 * n)
	watts := power.TDPPerCoreW*float64(n) - totalFloorW
	if watts <= 0 {
		return nil, fmt.Errorf("workload: power floors exhaust the TDP")
	}
	// DDR3-1600 channels scale with core count (Table 1): 12.8 GB/s per
	// channel, one channel per four cores, minus the per-core floors.
	bw := dram.ChannelBandwidthGBs*float64(maxInt(n/4, 1)) - app.FloorBandwidthGBs*float64(n)
	if bw <= 0 {
		return nil, fmt.Errorf("workload: bandwidth floors exhaust the channels")
	}
	s.Capacity = []float64{regions, watts, bw}
	return s, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
