package workload

import (
	"math"
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
)

func threadedBundle(t *testing.T) ThreadedBundle {
	t.Helper()
	mk := func(name string, threads int) ThreadedApp {
		spec, err := app.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return ThreadedApp{Spec: spec, Threads: threads}
	}
	// 8 cores: a 4-thread solver, a 2-thread cache-hungry app, two
	// single-thread compute jobs.
	return ThreadedBundle{Apps: []ThreadedApp{
		mk("swim", 4),
		mk("mcf", 2),
		mk("sixtrack", 1),
		mk("hmmer", 1),
	}}
}

func TestThreadedBundleCores(t *testing.T) {
	if got := threadedBundle(t).Cores(); got != 8 {
		t.Fatalf("cores = %d", got)
	}
}

func TestNewSetupThreadedValidation(t *testing.T) {
	if _, err := NewSetupThreaded(ThreadedBundle{}); err == nil {
		t.Error("empty bundle accepted")
	}
	tb := threadedBundle(t)
	tb.Apps[0].Threads = 0
	if _, err := NewSetupThreaded(tb); err == nil {
		t.Error("zero-thread application accepted")
	}
}

func TestThreadedSetupShape(t *testing.T) {
	tb := threadedBundle(t)
	s, err := NewSetupThreaded(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Players) != 4 {
		t.Fatalf("players = %d, want one per application", len(s.Players))
	}
	// Capacity is per-core: 8 cores → 24 market regions.
	if s.Capacity[0] != 24 {
		t.Errorf("cache capacity %g, want 24", s.Capacity[0])
	}
	// The 4-thread app's max useful allocation is 4× a single thread's.
	single := s.Players[2].MaxAlloc[0] // sixtrack ×1
	quad := s.Players[0].MaxAlloc[0]   // swim ×4
	if math.Abs(quad-4*single) > 1e-9 {
		t.Errorf("4-thread MaxAlloc %g, want 4× single %g", quad, single)
	}
}

func TestCoalitionUtilitySplitsEvenly(t *testing.T) {
	tb := threadedBundle(t)
	s, err := NewSetupThreaded(tb)
	if err != nil {
		t.Fatal(err)
	}
	// The coalition at allocation k·x equals k threads at x.
	per := []float64{3, 5}
	coal := s.Players[0].Utility.Value([]float64{4 * per[0], 4 * per[1]})
	single := s.Utilities[0].Value(per)
	if math.Abs(coal-4*single) > 1e-12 {
		t.Errorf("coalition utility %g != 4× per-thread %g", coal, single)
	}
	if s.Players[0].BudgetWeight != 4 {
		t.Errorf("coalition budget weight %g, want 4", s.Players[0].BudgetWeight)
	}
}

func TestThreadedMarketScalesAllocationWithThreads(t *testing.T) {
	tb := threadedBundle(t)
	s, err := NewSetupThreaded(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Equal budget per *application* over-funds narrow applications: a
	// single thread cannot use a whole application's purse, so its λ
	// collapses and ReBudget reclaims the money for the wide coalitions.
	eq, err := (core.EqualBudget{}).Allocate(s.Capacity, s.Players)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (core.ReBudget{Step: 40}).Allocate(s.Capacity, s.Players)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets start weighted per core: the 4-thread coalition holds 4×.
	if eq.Budgets[0] != 4*eq.Budgets[2] {
		t.Errorf("coalition budget %g, want 4× single-thread %g", eq.Budgets[0], eq.Budgets[2])
	}
	// §3.2: re-assignment does not guarantee a per-instance improvement;
	// only catastrophic losses indicate a bug.
	if out.Efficiency() < eq.Efficiency()*0.9 {
		t.Errorf("ReBudget (%g) collapsed vs EqualBudget (%g) on coalitions",
			out.Efficiency(), eq.Efficiency())
	}
	// Coalition utilities sum to the per-core weighted speedup, bounded
	// by the core count.
	if out.Efficiency() <= 0 || out.Efficiency() > 8 {
		t.Errorf("weighted speedup %g out of range", out.Efficiency())
	}
	per, err := PerThreadUtilities(tb, out.Utilities)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range per {
		if u < 0 || u > 1.01 {
			t.Errorf("app %d per-thread utility %g out of range", i, u)
		}
	}
}

func TestPerThreadUtilitiesValidation(t *testing.T) {
	tb := threadedBundle(t)
	if _, err := PerThreadUtilities(tb, []float64{1}); err == nil {
		t.Error("mismatched utilities accepted")
	}
}
