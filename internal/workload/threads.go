package workload

import (
	"fmt"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/market"
	"rebudget/internal/power"
)

// ThreadedApp is a multithreaded application occupying Threads cores, each
// thread running the Spec's behaviour. Following §5's discussion, resources
// are allocated at application granularity: all threads share one market
// player's purse, and the player's allocation is split evenly among its
// threads ("the demand of the threads tend to be similar across threads of
// a parallel application").
type ThreadedApp struct {
	Spec    app.Spec
	Threads int
}

// ThreadedBundle is a workload of multithreaded applications.
type ThreadedBundle struct {
	Apps []ThreadedApp
}

// Cores returns the total core count the bundle occupies.
func (tb ThreadedBundle) Cores() int {
	n := 0
	for _, a := range tb.Apps {
		n += a.Threads
	}
	return n
}

// coalitionUtility evaluates an application-level allocation by splitting
// it evenly across the application's threads and summing the (identical)
// per-thread utilities: U(r) = k·u(r/k). The application's maximum utility
// is therefore its thread count, so summing player utilities reproduces the
// per-core weighted speedup of Equation 5 exactly, and a coalition's
// marginal utility of money is commensurate with a single thread's.
type coalitionUtility struct {
	perThread market.Utility
	threads   float64
}

// Value implements market.Utility.
func (c coalitionUtility) Value(alloc []float64) float64 {
	per := make([]float64, len(alloc))
	for j, a := range alloc {
		per[j] = a / c.threads
	}
	return c.threads * c.perThread.Value(per)
}

// NewSetupThreaded assembles an application-granularity market for a
// threaded bundle. Efficiency over this setup is the mean per-thread
// weighted speedup of each application, summed over applications.
func NewSetupThreaded(tb ThreadedBundle) (*Setup, error) {
	if len(tb.Apps) < 2 {
		return nil, fmt.Errorf("workload: threaded bundle needs at least 2 applications")
	}
	cores := tb.Cores()
	s := &Setup{Bundle: Bundle{Category: "threaded"}}
	totalFloorW := 0.0
	for i, ta := range tb.Apps {
		if ta.Threads < 1 {
			return nil, fmt.Errorf("workload: application %d has %d threads", i, ta.Threads)
		}
		m := app.NewModel(ta.Spec)
		curve, err := m.AnalyticMissCurve()
		if err != nil {
			return nil, err
		}
		u, err := app.NewUtility(m, curve)
		if err != nil {
			return nil, err
		}
		k := float64(ta.Threads)
		totalFloorW += u.FloorPowerW() * k
		maxPer := u.MaxUsefulAlloc()
		s.Models = append(s.Models, m)
		s.Utilities = append(s.Utilities, u)
		s.Players = append(s.Players, core.PlayerSpec{
			Name:         fmt.Sprintf("%s×%d", ta.Spec.Name, ta.Threads),
			Utility:      coalitionUtility{perThread: u, threads: k},
			MaxAlloc:     []float64{maxPer[0] * k, maxPer[1] * k},
			MinAlloc:     []float64{0, 0},
			BudgetWeight: k, // equal budget per core, not per application
		})
		s.Bundle.Apps = append(s.Bundle.Apps, ta.Spec)
	}
	regions := float64(3 * cores)
	watts := power.TDPPerCoreW*float64(cores) - totalFloorW
	if watts <= 0 {
		return nil, fmt.Errorf("workload: power floors exhaust the TDP")
	}
	s.Capacity = []float64{regions, watts}
	return s, nil
}

// PerThreadUtilities converts application (coalition) utilities back into
// per-thread normalised performance, for per-application reporting.
func PerThreadUtilities(tb ThreadedBundle, utilities []float64) ([]float64, error) {
	if len(utilities) != len(tb.Apps) {
		return nil, fmt.Errorf("workload: %d utilities for %d applications", len(utilities), len(tb.Apps))
	}
	out := make([]float64, len(utilities))
	for i, ta := range tb.Apps {
		out[i] = utilities[i] / float64(ta.Threads)
	}
	return out, nil
}
