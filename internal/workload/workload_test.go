package workload

import (
	"testing"

	"rebudget/internal/app"
	"rebudget/internal/core"
	"rebudget/internal/numeric"
)

func TestClassCounts(t *testing.T) {
	counts, err := CPBN.ClassCounts(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []app.Class{app.Cache, app.Power, app.Both, app.None} {
		if counts[cl] != 2 {
			t.Errorf("CPBN/8: class %v count = %d, want 2", cl, counts[cl])
		}
	}
	counts, _ = CCPP.ClassCounts(64)
	if counts[app.Cache] != 32 || counts[app.Power] != 32 || counts[app.Both] != 0 {
		t.Errorf("CCPP/64 counts wrong: %v", counts)
	}
	counts, _ = CPBB.ClassCounts(8)
	if counts[app.Both] != 4 || counts[app.Cache] != 2 || counts[app.Power] != 2 {
		t.Errorf("CPBB/8 counts wrong: %v", counts)
	}
	if _, err := CPBN.ClassCounts(6); err == nil {
		t.Error("non-multiple-of-4 core count accepted")
	}
	if _, err := Category("CPXZ").ClassCounts(8); err == nil {
		t.Error("bogus category accepted")
	}
	if _, err := Category("CPB").ClassCounts(8); err == nil {
		t.Error("short category accepted")
	}
}

func TestGenerateRespectsCategory(t *testing.T) {
	rng := numeric.NewRand(1)
	for _, cat := range Categories() {
		for _, cores := range []int{8, 64} {
			b, err := Generate(cat, cores, rng)
			if err != nil {
				t.Fatalf("%s/%d: %v", cat, cores, err)
			}
			if len(b.Apps) != cores {
				t.Fatalf("%s/%d: %d apps", cat, cores, len(b.Apps))
			}
			want, _ := cat.ClassCounts(cores)
			got := map[app.Class]int{}
			for _, a := range b.Apps {
				got[a.Class]++
			}
			for cl, w := range want {
				if got[cl] != w {
					t.Errorf("%s/%d: class %v count %d, want %d", cat, cores, cl, got[cl], w)
				}
			}
		}
	}
}

func TestGenerateAllSweepShape(t *testing.T) {
	bundles, err := GenerateAll(8, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 240 {
		t.Fatalf("sweep has %d bundles, want 240 (§5)", len(bundles))
	}
	// Deterministic for a fixed seed.
	again, _ := GenerateAll(8, 40, 42)
	for i := range bundles {
		for j := range bundles[i].Apps {
			if bundles[i].Apps[j].Name != again[i].Apps[j].Name {
				t.Fatal("GenerateAll not deterministic")
			}
		}
	}
	other, _ := GenerateAll(8, 40, 43)
	same := true
	for i := range bundles {
		for j := range bundles[i].Apps {
			if bundles[i].Apps[j].Name != other[i].Apps[j].Name {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical sweeps")
	}
}

func TestFigure3Bundle(t *testing.T) {
	b, err := Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Apps) != 8 || b.Category != CPBB {
		t.Fatalf("bundle shape wrong: %d apps, category %s", len(b.Apps), b.Category)
	}
	count := map[string]int{}
	for _, a := range b.Apps {
		count[a.Name]++
	}
	if count["apsi"] != 2 || count["swim"] != 2 || count["mcf"] != 2 ||
		count["hmmer"] != 1 || count["sixtrack"] != 1 {
		t.Errorf("bundle composition wrong: %v", count)
	}
}

func TestNewSetup(t *testing.T) {
	b, _ := Figure3Bundle()
	s, err := NewSetup(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Players) != 8 || len(s.Models) != 8 || len(s.Utilities) != 8 {
		t.Fatalf("setup sizes wrong")
	}
	// 8 cores: 24 market regions; watts below 80 W TDP but most of it.
	if s.Capacity[0] != 24 {
		t.Errorf("cache capacity = %g regions, want 24", s.Capacity[0])
	}
	if s.Capacity[1] <= 60 || s.Capacity[1] >= 80 {
		t.Errorf("power capacity = %g W, want most of the 80 W TDP", s.Capacity[1])
	}
	for i, p := range s.Players {
		if p.Utility == nil || p.MaxAlloc == nil || p.MinAlloc == nil {
			t.Errorf("player %d incomplete", i)
		}
	}
	if _, err := NewSetup(Bundle{}); err == nil {
		t.Error("empty bundle accepted")
	}
}

func TestNewSetupWithBandwidth(t *testing.T) {
	b, _ := Figure3Bundle()
	s, err := NewSetupWithBandwidth(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Capacity) != 3 {
		t.Fatalf("capacity dims = %d, want 3", len(s.Capacity))
	}
	// 8 cores → 2 channels → 25.6 GB/s minus 8×0.25 floors.
	if s.Capacity[2] <= 20 || s.Capacity[2] >= 26 {
		t.Errorf("bandwidth capacity %g GB/s implausible", s.Capacity[2])
	}
	for i, p := range s.Players {
		if len(p.MaxAlloc) != 3 {
			t.Errorf("player %d MaxAlloc dims = %d", i, len(p.MaxAlloc))
		}
	}
	if _, err := NewSetupWithBandwidth(Bundle{}); err == nil {
		t.Error("empty bundle accepted")
	}
}

func TestThreeResourceMarketAllocates(t *testing.T) {
	// The full pipeline at M=3: a BBNN bundle where the N streamers
	// compete for bandwidth while B apps want cache and power.
	rng := numeric.NewRand(4)
	b, err := Generate(BBNN, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSetupWithBandwidth(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (core.ReBudget{Step: 20}).Allocate(s.Capacity, s.Players)
	if err != nil {
		t.Fatal(err)
	}
	// §6.4: runs that hit the 30-iteration fail-safe still yield a usable
	// allocation, so feasibility — not convergence — is the requirement.
	if out.Iterations > 30*out.EquilibriumRuns {
		t.Errorf("iterations %d exceed the fail-safe budget", out.Iterations)
	}
	for j, c := range s.Capacity {
		total := 0.0
		for i := range out.Allocations {
			total += out.Allocations[i][j]
		}
		if total > c*(1+1e-6) {
			t.Errorf("resource %d over-allocated: %g > %g", j, total, c)
		}
	}
	// N-class streamers should hold more bandwidth than B-class apps.
	var nBW, bBW, nCount, bCount float64
	for i, a := range b.Apps {
		switch a.Class {
		case app.None:
			nBW += out.Allocations[i][2]
			nCount++
		case app.Both:
			bBW += out.Allocations[i][2]
			bCount++
		}
	}
	if nBW/nCount < bBW/bCount {
		t.Errorf("streamers got %.2f GB/s avg, B apps %.2f — bandwidth misdirected",
			nBW/nCount, bBW/bCount)
	}
}
