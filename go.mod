module rebudget

go 1.22
