// Package rebudget is the public facade of the ReBudget reproduction — a
// market-based multicore resource-allocation library implementing Wang &
// Martínez, "ReBudget: Trading Off Efficiency vs. Fairness in Market-Based
// Multicore Resource Allocation via Runtime Budget Reassignment"
// (ASPLOS 2016).
//
// The facade re-exports the library's stable surface:
//
//   - the proportional-share market and its equilibrium search (§2),
//   - the MUR/MBR metrics with their efficiency and fairness bounds
//     (Theorems 1–2),
//   - the ReBudget budget-reassignment allocator and the baselines it is
//     evaluated against (§4.2, §6),
//   - the synthetic SPEC-like application models and workload bundles (§5),
//   - the execution-driven CMP simulator used for detailed evaluation
//     (§5.1, §6.3).
//
// Quick start:
//
//	bundle, _ := rebudget.Figure3Bundle()
//	setup, _ := rebudget.NewSetup(bundle)
//	out, _ := rebudget.ReBudget{Step: 20}.Allocate(setup.Capacity, setup.Players)
//	fmt.Println(out.Efficiency(), out.MUR, out.MBR)
//
// See the examples/ directory for runnable programs and cmd/rebudget-bench
// for the experiment harness that regenerates every table and figure of the
// paper's evaluation.
package rebudget

import (
	"rebudget/internal/app"
	"rebudget/internal/cache"
	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/fault"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/workload"
)

// --- allocation mechanisms (§4.2, §6) ---

type (
	// Allocator is a resource-allocation mechanism.
	Allocator = core.Allocator
	// PlayerSpec describes one allocation client.
	PlayerSpec = core.PlayerSpec
	// Outcome is a mechanism's allocation decision plus diagnostics.
	Outcome = core.Outcome
	// ReBudget is the paper's contribution: iterative budget
	// reassignment with an efficiency-vs-fairness knob.
	ReBudget = core.ReBudget
	// EqualShare splits every resource evenly (no market).
	EqualShare = core.EqualShare
	// EqualBudget is the XChange market with uniform budgets.
	EqualBudget = core.EqualBudget
	// Balanced is XChange's potential-proportional budget assignment.
	Balanced = core.Balanced
	// MaxEfficiency is the infeasible welfare-maximising reference.
	MaxEfficiency = core.MaxEfficiency
)

// InitialBudget is every player's starting budget (§6).
const InitialBudget = core.InitialBudget

// --- resilience: fault injection and graceful degradation ---

type (
	// Resilient hardens any Allocator with a graceful-degradation fallback
	// chain (sanitized retry → last good outcome → fallback mechanism).
	Resilient = core.Resilient
	// ResilientConfig tunes the fallback chain.
	ResilientConfig = core.ResilientConfig
	// ResilientStats counts what the fallback chain had to do.
	ResilientStats = core.ResilientStats
	// FaultConfig configures the deterministic fault injector; the zero
	// value disables injection entirely.
	FaultConfig = fault.Config
	// FaultStats counts the faults an injector fired.
	FaultStats = fault.Stats
	// Health is the allocation pipeline's degraded-mode telemetry.
	Health = metrics.Health
	// HealthState is the pipeline state machine position.
	HealthState = metrics.HealthState
	// NotConvergedError reports an equilibrium run that stopped before
	// prices settled, carrying the complete partial state.
	NotConvergedError = market.NotConvergedError
	// UtilityError reports a player utility that produced a non-finite
	// value during an equilibrium run.
	UtilityError = market.UtilityError
)

// ErrBadInput marks allocation failures caused by invalid player input.
var ErrBadInput = core.ErrBadInput

// NewResilient wraps an allocation mechanism with the fallback chain.
func NewResilient(inner Allocator, cfg ResilientConfig) *Resilient {
	return core.NewResilient(inner, cfg)
}

// Settle unwraps a NotConvergedError into its best-effort equilibrium —
// the paper's §6.4 fail-safe policy as an explicit call-site choice.
func Settle(eq *Equilibrium, err error) (*Equilibrium, error) {
	return market.Settle(eq, err)
}

// --- market framework (§2) ---

type (
	// Market is a proportional-share market instance.
	Market = market.Market
	// Player is one market participant.
	Player = market.Player
	// Utility is a player's utility over allocation vectors.
	Utility = market.Utility
	// UtilityFunc adapts a function to Utility.
	UtilityFunc = market.UtilityFunc
	// MarketConfig tunes the equilibrium search.
	MarketConfig = market.Config
	// Equilibrium is the outcome of a bidding–pricing run.
	Equilibrium = market.Equilibrium
)

// NewMarket builds a market over the given resource capacities.
func NewMarket(capacity []float64, players []*Player, cfg MarketConfig) (*Market, error) {
	return market.New(capacity, players, cfg)
}

// DefaultMarketConfig returns the paper's convergence constants.
func DefaultMarketConfig() MarketConfig { return market.DefaultConfig() }

// --- metrics and theorems (§3) ---

// MUR is the Market Utility Range (Definition 5).
func MUR(lambdas []float64) (float64, error) { return metrics.MUR(lambdas) }

// MBR is the Market Budget Range (Definition 6).
func MBR(budgets []float64) (float64, error) { return metrics.MBR(budgets) }

// PoALowerBound is Theorem 1's efficiency guarantee.
func PoALowerBound(mur float64) float64 { return metrics.PoALowerBound(mur) }

// EnvyFreenessBound is Theorem 2's fairness guarantee.
func EnvyFreenessBound(mbr float64) float64 { return metrics.EnvyFreenessBound(mbr) }

// MinMBRForEnvyFreeness inverts Theorem 2 (the administrator's knob, §4.2).
func MinMBRForEnvyFreeness(c float64) (float64, error) {
	return metrics.MinMBRForEnvyFreeness(c)
}

// --- applications and workloads (§5) ---

type (
	// AppSpec is one synthetic application's parameters.
	AppSpec = app.Spec
	// AppClass is the C/P/B/N sensitivity classification.
	AppClass = app.Class
	// AppModel evaluates an application's performance and power.
	AppModel = app.Model
	// AppUtility is an application's (Talus-convexified) market utility.
	AppUtility = app.Utility
	// Bundle is one multiprogrammed workload.
	Bundle = workload.Bundle
	// Category is a bundle category (CPBN, CCPP, …).
	Category = workload.Category
	// Setup is an analytically-modelled market instance for a bundle.
	Setup = workload.Setup
)

// Application classes.
const (
	ClassCache = app.Cache
	ClassPower = app.Power
	ClassBoth  = app.Both
	ClassNone  = app.None
)

// Catalog returns the 24-application workload (§5).
func Catalog() []AppSpec { return app.Catalog() }

// LookupApp finds a catalog application by name.
func LookupApp(name string) (AppSpec, error) { return app.Lookup(name) }

// NewAppModel builds an application performance model.
func NewAppModel(spec AppSpec) *AppModel { return app.NewModel(spec) }

// MissCurve is a miss ratio as a function of allocated cache regions.
type MissCurve = cache.MissCurve

// NewAppUtility builds a Talus-convexified market utility from an
// application model and a (measured or analytic) miss curve.
func NewAppUtility(m *AppModel, curve *MissCurve) (*AppUtility, error) {
	return app.NewUtility(m, curve)
}

// BandwidthUtility is the three-resource extension of AppUtility: cache
// regions, watts and memory bandwidth (GB/s).
type BandwidthUtility = app.BandwidthUtility

// NewBandwidthUtility builds the three-resource utility surface.
func NewBandwidthUtility(m *AppModel, curve *MissCurve) (*BandwidthUtility, error) {
	return app.NewBandwidthUtility(m, curve)
}

// NewSetupWithBandwidth assembles a three-resource market for a bundle —
// the framework's general M-resource form (§2); the paper's evaluation
// stops at cache + power.
func NewSetupWithBandwidth(b Bundle) (*Setup, error) {
	return workload.NewSetupWithBandwidth(b)
}

// Categories returns the six bundle categories.
func Categories() []Category { return workload.Categories() }

// GenerateBundles reproduces the §5 sweep deterministically.
func GenerateBundles(cores, perCategory int, seed uint64) ([]Bundle, error) {
	return workload.GenerateAll(cores, perCategory, seed)
}

// Figure3Bundle is the 8-core BBPC case-study bundle (§6.1.1).
func Figure3Bundle() (Bundle, error) { return workload.Figure3Bundle() }

// NewSetup profiles a bundle analytically and assembles its market.
func NewSetup(b Bundle) (*Setup, error) { return workload.NewSetup(b) }

// --- multithreaded applications (§5, application-granularity allocation) ---

type (
	// ThreadedApp is a multithreaded application occupying several cores.
	ThreadedApp = workload.ThreadedApp
	// ThreadedBundle is a workload of multithreaded applications.
	ThreadedBundle = workload.ThreadedBundle
)

// NewSetupThreaded assembles an application-granularity market: all threads
// of an application share one player's budget and allocation.
func NewSetupThreaded(tb ThreadedBundle) (*Setup, error) {
	return workload.NewSetupThreaded(tb)
}

// PerThreadUtilities converts application (coalition) utilities back into
// per-thread normalised performance.
func PerThreadUtilities(tb ThreadedBundle, utilities []float64) ([]float64, error) {
	return workload.PerThreadUtilities(tb, utilities)
}

// --- detailed simulation (§5.1, §6.3) ---

type (
	// SimConfig sizes an execution-driven simulation.
	SimConfig = cmpsim.Config
	// Chip is one simulated CMP running one bundle.
	Chip = cmpsim.Chip
	// SimResult summarises a simulated run.
	SimResult = cmpsim.Result
	// SystemConfig mirrors Table 1.
	SystemConfig = cmpsim.SystemConfig
	// SwitchEvent schedules a context switch during a simulated run.
	SwitchEvent = cmpsim.SwitchEvent
)

// DefaultSimConfig sizes a simulation for the given core count.
func DefaultSimConfig(cores int) SimConfig { return cmpsim.DefaultConfig(cores) }

// NewChip builds a simulated CMP for a bundle.
func NewChip(cfg SimConfig, b Bundle) (*Chip, error) { return cmpsim.NewChip(cfg, b) }

// NewSystemConfig scales Table 1 to a core count.
func NewSystemConfig(cores int) SystemConfig { return cmpsim.NewSystemConfig(cores) }
