// Command marketsim runs a single workload bundle through one allocation
// mechanism and prints the full market state: budgets, bids, allocations,
// per-player utilities and marginal utilities, MUR/MBR and the theoretical
// bounds they imply.
//
// Usage:
//
//	marketsim -category CPBB -cores 8 -mech rebudget-20
//	marketsim -fig3 -mech equalbudget
//	marketsim -category BBPN -cores 64 -mech rebudget -min-ef 0.5 -sim
//	marketsim -category CPBN -cores 8 -mech rebudget-20 -sim -faults 0.1 -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"rebudget/internal/cmpsim"
	"rebudget/internal/core"
	"rebudget/internal/fault"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
	"rebudget/internal/numeric"
	"rebudget/internal/workload"
)

func main() {
	var (
		category = flag.String("category", "CPBN", "bundle category (CPBN|CCPP|CPBB|BBNN|BBPN|BBCN)")
		cores    = flag.Int("cores", 8, "number of cores (multiple of 4)")
		seed     = flag.Uint64("seed", 1, "bundle selection seed")
		fig3     = flag.Bool("fig3", false, "use the paper's Figure 3 BBPC bundle (8 cores)")
		mechName = flag.String("mech", "equalbudget", "mechanism: equalshare|equalbudget|balanced|maxefficiency|rebudget-<step>|rebudget")
		minEF    = flag.Float64("min-ef", 0, "fairness floor for -mech rebudget (Theorem 2 knob)")
		sim      = flag.Bool("sim", false, "run the detailed execution-driven simulation instead of the analytic market")
		bw       = flag.Bool("bw", false, "allocate memory bandwidth as a third resource")
		faults   = flag.Float64("faults", 0, "fault-injection rate in [0,1): monitor corruption + solver stalls at this rate, utility faults at a tenth of it (requires -sim)")
		faultSee = flag.Uint64("fault-seed", 1, "fault-injection random stream seed")
		workers  = flag.Int("workers", 0, "equilibrium round parallelism (0 = GOMAXPROCS, 1 = serial)")
		eqstats  = flag.Bool("eqstats", false, "print equilibrium convergence-cost counters to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
	err = run(*category, *cores, *seed, *fig3, *mechName, *minEF, *sim, *bw, *faults, *faultSee, *workers, *eqstats)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
}

// startProfiles starts the optional pprof captures; the returned function
// finalises them (stops the CPU profile, writes the heap profile).
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marketsim: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "marketsim: memprofile:", err)
		}
	}, nil
}

func parseMechanism(name string, minEF float64) (core.Allocator, error) {
	switch {
	case name == "equalshare":
		return core.EqualShare{}, nil
	case name == "equalbudget":
		return core.EqualBudget{}, nil
	case name == "balanced":
		return core.Balanced{}, nil
	case name == "maxefficiency":
		return core.MaxEfficiency{}, nil
	case name == "rebudget":
		if minEF <= 0 {
			return nil, fmt.Errorf("-mech rebudget needs -min-ef")
		}
		return core.ReBudget{MinEnvyFreeness: minEF}, nil
	case strings.HasPrefix(name, "rebudget-"):
		step, err := strconv.ParseFloat(strings.TrimPrefix(name, "rebudget-"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rebudget step in %q: %w", name, err)
		}
		return core.ReBudget{Step: step}, nil
	default:
		return nil, fmt.Errorf("unknown mechanism %q", name)
	}
}

func run(category string, cores int, seed uint64, fig3 bool, mechName string, minEF float64, sim, bw bool, faults float64, faultSeed uint64, workers int, eqstats bool) error {
	mech, err := parseMechanism(mechName, minEF)
	if err != nil {
		return err
	}
	var prof metrics.EquilibriumProfile
	defer func() {
		if eqstats {
			fmt.Fprintln(os.Stderr, "marketsim:", prof.Snapshot())
		}
	}()
	mech = core.WithMarketConfig(mech, func(mc market.Config) market.Config {
		mc.Workers = workers
		mc.Observer = prof.Observe
		return mc
	})
	if faults < 0 || faults >= 1 {
		return fmt.Errorf("-faults %g outside [0,1)", faults)
	}
	if faults > 0 && !sim {
		return fmt.Errorf("-faults requires -sim (injection targets the runtime monitoring pipeline)")
	}
	var bundle workload.Bundle
	if fig3 {
		bundle, err = workload.Figure3Bundle()
		cores = len(bundle.Apps)
	} else {
		bundle, err = workload.Generate(workload.Category(category), cores, numeric.NewRand(seed))
	}
	if err != nil {
		return err
	}

	fmt.Printf("bundle %s (%d cores):", bundle.Category, cores)
	for _, a := range bundle.Apps {
		fmt.Printf(" %s[%s]", a.Name, a.Class)
	}
	fmt.Println()

	if sim {
		cfg := cmpsim.DefaultConfig(cores)
		cfg.Seed = seed
		cfg.BandwidthMarket = bw
		cfg.MarketWorkers = workers
		if faults > 0 {
			cfg.Faults = fault.Config{
				MonitorRate: faults,
				SolverRate:  faults,
				UtilityRate: faults / 10,
				Seed:        faultSeed,
			}
		}
		chip, err := cmpsim.NewChip(cfg, bundle)
		if err != nil {
			return err
		}
		res, err := chip.Run(mech)
		if err != nil {
			return err
		}
		if eqstats {
			// The chip installs its own per-run profiler over the
			// command-level one; report the chip's counters.
			fmt.Fprintln(os.Stderr, "marketsim:", res.Equilibrium)
			eqstats = false
		}
		fmt.Printf("\ndetailed simulation, mechanism %s:\n", res.Mechanism)
		fmt.Printf("  weighted speedup  %8.3f\n", res.WeightedSpeedup)
		fmt.Printf("  envy-freeness     %8.3f\n", res.EnvyFreeness)
		fmt.Printf("  mean iterations   %8.1f\n", res.MeanIterations)
		fmt.Printf("  avg core power    %7.2f W\n", res.AvgPowerW)
		fmt.Printf("  max temperature   %7.1f C\n", res.MaxTempC)
		if faults > 0 {
			h := res.Health
			fmt.Printf("  pipeline health   %8s (attempts %d, failures %d, pinned %d, transitions %d)\n",
				h.State, h.AllocAttempts, h.AllocFailures, h.PinnedIntervals, h.Transitions)
			fmt.Printf("  failure causes    monitor %d, utility %d, solver %d, other %d\n",
				h.Causes[metrics.CauseMonitor], h.Causes[metrics.CauseUtility],
				h.Causes[metrics.CauseSolver], h.Causes[metrics.CauseAllocator])
			fmt.Printf("  faults fired      curves %d, utilities %d, stalls %d; repairs %d, non-converged %d\n",
				res.Faults.CurveFaults, res.Faults.UtilityFaults, res.Faults.SolverStalls,
				h.CurveRepairs, h.NonConverged)
		}
		fmt.Printf("  %-14s %10s\n", "app", "norm perf")
		for i, a := range bundle.Apps {
			fmt.Printf("  %-14s %10.3f\n", fmt.Sprintf("%s#%d", a.Name, i), res.NormPerf[i])
		}
		return nil
	}

	var setup *workload.Setup
	if bw {
		setup, err = workload.NewSetupWithBandwidth(bundle)
	} else {
		setup, err = workload.NewSetup(bundle)
	}
	if err != nil {
		return err
	}
	out, err := mech.Allocate(setup.Capacity, setup.Players)
	if err != nil {
		return err
	}
	ef, err := out.EnvyFreeness(setup.Players)
	if err != nil {
		return err
	}
	if bw {
		fmt.Printf("\nmechanism %s (capacity: %.0f regions, %.1f W, %.1f GB/s beyond floors):\n",
			out.Mechanism, setup.Capacity[0], setup.Capacity[1], setup.Capacity[2])
	} else {
		fmt.Printf("\nmechanism %s (capacity: %.0f regions, %.1f W beyond floors):\n",
			out.Mechanism, setup.Capacity[0], setup.Capacity[1])
	}
	fmt.Printf("  efficiency (weighted speedup) %8.3f\n", out.Efficiency())
	fmt.Printf("  envy-freeness                 %8.3f\n", ef)
	fmt.Printf("  MUR %6.3f  → PoA bound %6.3f\n", out.MUR, out.PoABound())
	fmt.Printf("  MBR %6.3f  → EF  bound %6.3f\n", out.MBR, out.EFBound())
	fmt.Printf("  equilibrium runs %d, total iterations %d, converged %v\n",
		out.EquilibriumRuns, out.Iterations, out.Converged)
	header := "  %-14s %8s %10s %10s"
	cols := []interface{}{"app", "budget", "Δregions", "Δwatts"}
	if bw {
		header += " %10s"
		cols = append(cols, "ΔGB/s")
	}
	fmt.Printf(header+" %12s %10s\n", append(cols, "utility", "lambda")...)
	for i, p := range setup.Players {
		budget := "-"
		lambda := "-"
		if out.Budgets != nil {
			budget = fmt.Sprintf("%.2f", out.Budgets[i])
		}
		if out.Lambdas != nil {
			lambda = fmt.Sprintf("%.5f", out.Lambdas[i])
		}
		fmt.Printf("  %-14s %8s", p.Name, budget)
		for _, a := range out.Allocations[i] {
			fmt.Printf(" %10.2f", a)
		}
		fmt.Printf(" %12.3f %10s\n", out.Utilities[i], lambda)
	}
	return nil
}
