// Command rebudget-snapstore is the standalone snapshot service: a
// content-addressed blob store that rebudgetd shards point at with
// -snapshot-url instead of (or alongside) a local -snapshot-dir. Blobs
// are deduplicated by SHA-256 and CRC-checked on both write and read, so
// a rotten blob surfaces as a miss (the daemon cold-starts) rather than
// a poisoned rehydrate. See DESIGN.md, "Elastic membership".
//
// Usage:
//
//	rebudget-snapstore -addr :8345
//	rebudgetd -addr :9001 -snapshot-url http://127.0.0.1:8345
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rebudget/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", ":8345", "listen address")
		maxBody   = flag.Int64("max-body", 0, "largest accepted snapshot in bytes (0 = 4 MiB)")
		logFormat = flag.String("log", "text", "log format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rebudget-snapstore: unknown -log format %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	ss := cluster.NewSnapServer(*maxBody, log)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: ss.Handler(), ReadHeaderTimeout: 5 * time.Second}
	log.Info("rebudget-snapstore listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("signal received, shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
		log.Info("rebudget-snapstore stopped", "snapshots", ss.Len())
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	}
}
