// Command rebudget-router is the sharded serving tier: a consistent-hash
// reverse proxy that places rebudgetd sessions on N backend shards by
// session id, probes each shard's /healthz, and fails open to the next
// ring position when a shard dies or drains. Run the shards with a shared
// -snapshot-dir and a ring move becomes a warm migration: the receiving
// shard rehydrates the session from its snapshot. Per-shard circuit
// breakers (-breaker-failures, -breaker-open-timeout) catch gray failures
// the probes miss, and retry budgets (-retry-budget, -retry-rate) bound
// failover amplification during brownouts. See DESIGN.md, "Sharded
// serving" and "Failure model & chaos", and the README quick-start.
//
// With -admin-token the router turns elastic: POST/DELETE /admin/shards
// add and remove shards under live traffic (resident sessions migrate by
// snapshot at a bounded per-tick budget), -backends-file re-reads the
// shard list on SIGHUP, and -gossip-peers exchanges probe state and
// membership with sibling routers. See DESIGN.md, "Elastic membership".
//
// Usage:
//
//	rebudget-router -addr :8343 \
//	  -backends http://127.0.0.1:9001,http://127.0.0.1:9002
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rebudget/internal/router"
)

func main() {
	var (
		addr          = flag.String("addr", ":8343", "listen address")
		backends      = flag.String("backends", "", "comma-separated shard base URLs (required)")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		probeInterval = flag.Duration("probe-interval", time.Second, "/healthz polling period")
		probeJitter   = flag.Float64("probe-jitter", 0.2, "probe-period jitter fraction (decorrelates router replicas)")
		proxyTimeout  = flag.Duration("proxy-timeout", 30*time.Second, "per-proxied-request deadline")
		breakerFails  = flag.Int("breaker-failures", 3, "consecutive shard failures that open its circuit breaker")
		breakerOpen   = flag.Duration("breaker-open-timeout", 5*time.Second, "how long an open breaker rejects before a half-open trial")
		retryBudget   = flag.Int("retry-budget", 2, "failover retries allowed per request after the first attempt")
		retryRate     = flag.Float64("retry-rate", 16, "router-wide retry tokens per second (bounds retry amplification)")
		retryBurst    = flag.Float64("retry-burst", 0, "retry token bucket burst (default 2x -retry-rate)")
		backendKey    = flag.String("backend-api-key", "", "bearer token for shards running with -api-key: sent on the router's own calls and injected on proxied requests that carry no Authorization")
		logFormat     = flag.String("log", "text", "log format: text or json")

		adminToken     = flag.String("admin-token", "", "bearer token for /admin endpoints; setting it turns on elastic membership")
		backendsFile   = flag.String("backends-file", "", "file of shard URLs (one per line, # comments); re-read and applied on SIGHUP")
		migBudget      = flag.Int("migration-budget", 0, "sessions migrated per tick during a rebalance (0 = 8)")
		migInterval    = flag.Duration("migration-interval", 0, "migration tick period (0 = 200ms)")
		gossipPeers    = flag.String("gossip-peers", "", "comma-separated sibling router URLs for probe-state gossip")
		gossipInterval = flag.Duration("gossip-interval", 0, "gossip exchange period (0 = 1s)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rebudget-router: unknown -log format %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	var bases []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if *backendsFile != "" {
		fileBases, err := readBackendsFile(*backendsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rebudget-router: %v\n", err)
			os.Exit(2)
		}
		bases = append(bases, fileBases...)
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "rebudget-router: -backends or -backends-file is required (shard URLs)")
		os.Exit(2)
	}

	var peers []string
	for _, p := range strings.Split(*gossipPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}

	rt, err := router.New(router.Config{
		Backends:      bases,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeJitter:   *probeJitter,
		ProxyTimeout:  *proxyTimeout,
		Breaker: router.BreakerConfig{
			FailureThreshold: *breakerFails,
			OpenTimeout:      *breakerOpen,
		},
		BackendAPIKey:     *backendKey,
		RetryBudget:       *retryBudget,
		RetryRate:         *retryRate,
		RetryBurst:        *retryBurst,
		AdminToken:        *adminToken,
		GossipPeers:       peers,
		GossipInterval:    *gossipInterval,
		MigrationBudget:   *migBudget,
		MigrationInterval: *migInterval,
		Elastic:           *backendsFile != "",
		Logger:            log,
	})
	if err != nil {
		log.Error("router construction failed", "err", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	log.Info("rebudget-router listening", "addr", ln.Addr().String(), "shards", len(bases))

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	if *backendsFile != "" {
		signal.Notify(sigc, syscall.SIGHUP)
	}
	for {
		select {
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Config reload: re-read the shard list and reconcile the
				// ring against it (adds and drains happen under traffic).
				fileBases, err := readBackendsFile(*backendsFile)
				if err != nil {
					log.Warn("reload skipped: backends file unreadable", "err", err)
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				err = rt.SetBackends(ctx, fileBases)
				cancel()
				if err != nil {
					log.Warn("reload failed", "err", err)
					continue
				}
				log.Info("backends reloaded", "shards", len(fileBases), "epoch", rt.Epoch())
				continue
			}
			log.Info("signal received, shutting down", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil {
				log.Warn("shutdown incomplete", "err", err)
			}
			rt.Close()
			log.Info("rebudget-router stopped")
			return
		case err := <-errc:
			if !errors.Is(err, http.ErrServerClosed) {
				log.Error("serve failed", "err", err)
				rt.Close()
				os.Exit(1)
			}
			return
		}
	}
}

// readBackendsFile parses a shard-list file: one URL per line, blank
// lines and #-comments ignored (inline comments after a URL too).
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("backends file: %w", err)
	}
	var bases []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			bases = append(bases, line)
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("backends file %s: no shard URLs", path)
	}
	return bases, nil
}
