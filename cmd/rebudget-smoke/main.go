// Command rebudget-smoke drives an end-to-end smoke check against a
// running rebudgetd — or a rebudget-router tier, which speaks the same
// API: create (or resume) a market session, step it through a few epochs
// with the typed client, then scrape /metrics and verify the requested
// counters actually moved. It exits non-zero on any failure, so
// scripts/serve_smoke.sh and scripts/router_smoke.sh (via `make ci`) can
// gate CI on it.
//
// Usage:
//
//	rebudget-smoke -base http://127.0.0.1:8344 [-epochs 3]
//	rebudget-smoke -base http://127.0.0.1:8344 -id s7 -resume 3 -epochs 1 -keep -checks none
//	rebudget-smoke -base http://127.0.0.1:8343 -metrics-only \
//	  -checks 'rebudget_router_up>=1,rebudget_router_failovers_total>=1'
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

func main() {
	var o opts
	flag.StringVar(&o.base, "base", "http://127.0.0.1:8344", "base URL of the rebudgetd or router to probe")
	flag.StringVar(&o.id, "id", "smoke", "session id to create or resume")
	flag.IntVar(&o.epochs, "epochs", 3, "epochs to drive through the session")
	flag.IntVar(&o.resume, "resume", -1, "resume an existing session and require >= this many epochs already served (-1: create fresh)")
	flag.BoolVar(&o.keep, "keep", false, "leave the session resident instead of deleting it")
	flag.BoolVar(&o.metricsOnly, "metrics-only", false, "skip session traffic; only poll health and run -checks")
	flag.StringVar(&o.checks, "checks", "default", `metric assertions: "default" (daemon serving counters), "none", or a comma-separated list of name>=min (labelled names allowed)`)
	flag.DurationVar(&o.wait, "wait", 5*time.Second, "how long to wait for the endpoint to come up")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "rebudget-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rebudget-smoke: OK")
}

type opts struct {
	base        string
	id          string
	epochs      int
	resume      int
	keep        bool
	metricsOnly bool
	checks      string
	wait        time.Duration
}

type check struct {
	metric string
	min    float64
}

func (o opts) checkList() ([]check, error) {
	switch o.checks {
	case "none":
		return nil, nil
	case "default":
		return []check{
			{"rebudgetd_up", 1},
			{"rebudgetd_sessions_live", 1},
			{"rebudgetd_sessions_created_total", 1},
			{"rebudgetd_epochs_served_total", float64(o.epochs)},
			{"rebudgetd_equilibrium_runs_total", float64(o.epochs)},
			{"rebudgetd_request_seconds_count", float64(o.epochs)},
		}, nil
	default:
		var out []check
		for _, part := range strings.Split(o.checks, ",") {
			name, min, ok := strings.Cut(part, ">=")
			if !ok {
				return nil, fmt.Errorf("bad check %q (want name>=min)", part)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(min), 64)
			if err != nil {
				return nil, fmt.Errorf("bad check %q: %v", part, err)
			}
			out = append(out, check{strings.TrimSpace(name), v})
		}
		return out, nil
	}
}

func run(o opts) error {
	checks, err := o.checkList()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := client.New(o.base)

	// The endpoint may still be binding its listener; poll /healthz briefly.
	// Any 200 counts: a degraded router (one shard down) still serves, and
	// asserting that is exactly what the failover smoke does.
	deadline := time.Now().Add(o.wait)
	for {
		_, err := c.Healthz(ctx)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("endpoint at %s never became healthy: %v", o.base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	if !o.metricsOnly {
		if err := driveSession(ctx, c, o); err != nil {
			return err
		}
	}

	if len(checks) == 0 {
		return nil
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	for _, ck := range checks {
		got, ok := metricValue(text, ck.metric)
		if !ok {
			return fmt.Errorf("/metrics missing %s", ck.metric)
		}
		if got < ck.min {
			return fmt.Errorf("%s = %g, want >= %g", ck.metric, got, ck.min)
		}
		fmt.Printf("rebudget-smoke: %s = %g (>= %g)\n", ck.metric, got, ck.min)
	}
	return nil
}

// driveSession creates (or resumes, asserting prior progress survived) the
// session and steps it o.epochs times.
func driveSession(ctx context.Context, c *client.Client, o opts) error {
	var v server.SessionView
	var err error
	if o.resume >= 0 {
		// Resume: the session must already exist — possibly rehydrated from
		// a snapshot on first touch — with its pre-restart progress intact.
		if v, err = c.GetSession(ctx, o.id); err != nil {
			return fmt.Errorf("resume session %q: %w", o.id, err)
		}
		if v.Epochs < int64(o.resume) {
			return fmt.Errorf("resumed session %q has %d epochs, want >= %d (snapshot lost progress?)", o.id, v.Epochs, o.resume)
		}
		fmt.Printf("rebudget-smoke: resumed %q at epoch %d\n", o.id, v.Epochs)
	} else {
		if v, err = c.CreateSession(ctx, server.SessionSpec{
			ID:        o.id,
			Workload:  server.WorkloadSpec{Fig3: true},
			Mechanism: "rebudget-0.05",
		}); err != nil {
			return fmt.Errorf("create session: %w", err)
		}
	}
	for e := 0; e < o.epochs; e++ {
		if v, err = c.StepEpoch(ctx, v.ID); err != nil {
			return fmt.Errorf("epoch %d: %w", e+1, err)
		}
	}
	minEpochs := int64(o.epochs)
	if o.resume > 0 {
		minEpochs += int64(o.resume)
	}
	if v.Epochs < minEpochs {
		return fmt.Errorf("session reports %d epochs, want >= %d", v.Epochs, minEpochs)
	}
	if o.epochs > 0 && (v.Alloc == nil || len(v.Alloc.Allocations) == 0) {
		return fmt.Errorf("session has no allocation after %d epochs", o.epochs)
	}
	if !o.keep {
		if err := c.DeleteSession(ctx, v.ID); err != nil {
			return fmt.Errorf("delete session: %w", err)
		}
	}
	return nil
}

// metricValue finds a sample line ("name value", where name may include a
// label selector) in Prometheus text exposition and returns its value.
func metricValue(text, name string) (float64, bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
