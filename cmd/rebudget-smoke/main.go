// Command rebudget-smoke drives an end-to-end smoke check against a
// running rebudgetd: create one market session, step it through a few
// epochs with the typed client, then scrape /metrics and verify the
// serving counters actually moved. It exits non-zero on any failure, so
// scripts/serve_smoke.sh (and `make serve-smoke`) can gate CI on it.
//
// Usage:
//
//	rebudget-smoke -base http://127.0.0.1:8344 [-epochs 3]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8344", "base URL of the rebudgetd to probe")
	epochs := flag.Int("epochs", 3, "epochs to drive through the session")
	wait := flag.Duration("wait", 5*time.Second, "how long to wait for the daemon to come up")
	flag.Parse()

	if err := run(*base, *epochs, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "rebudget-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rebudget-smoke: OK")
}

func run(base string, epochs int, wait time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New(base)

	// The daemon may still be binding its listener; poll /healthz briefly.
	deadline := time.Now().Add(wait)
	for {
		h, err := c.Healthz(ctx)
		if err == nil && h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s never became healthy: %v", base, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	v, err := c.CreateSession(ctx, server.SessionSpec{
		ID:        "smoke",
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
	})
	if err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	for e := 0; e < epochs; e++ {
		if v, err = c.StepEpoch(ctx, v.ID); err != nil {
			return fmt.Errorf("epoch %d: %w", e+1, err)
		}
	}
	if v.Epochs < int64(epochs) {
		return fmt.Errorf("session reports %d epochs, want >= %d", v.Epochs, epochs)
	}
	if v.Alloc == nil || len(v.Alloc.Allocations) == 0 {
		return fmt.Errorf("session has no allocation after %d epochs", epochs)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	checks := []struct {
		metric string
		min    float64
	}{
		{"rebudgetd_up", 1},
		{"rebudgetd_sessions_live", 1},
		{"rebudgetd_sessions_created_total", 1},
		{"rebudgetd_epochs_served_total", float64(epochs)},
		{"rebudgetd_equilibrium_runs_total", float64(epochs)},
		{"rebudgetd_request_seconds_count", float64(epochs)},
	}
	for _, ck := range checks {
		got, ok := metricValue(text, ck.metric)
		if !ok {
			return fmt.Errorf("/metrics missing %s", ck.metric)
		}
		if got < ck.min {
			return fmt.Errorf("%s = %g, want >= %g", ck.metric, got, ck.min)
		}
		fmt.Printf("rebudget-smoke: %s = %g (>= %g)\n", ck.metric, got, ck.min)
	}

	if err := c.DeleteSession(ctx, v.ID); err != nil {
		return fmt.Errorf("delete session: %w", err)
	}
	return nil
}

// metricValue finds an unlabelled sample line ("name value") in Prometheus
// text exposition and returns its value.
func metricValue(text, name string) (float64, bool) {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
