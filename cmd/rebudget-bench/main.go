// Command rebudget-bench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	rebudget-bench -exp fig4 -cores 64 -bundles 40
//	rebudget-bench -exp all -cores 8 -bundles 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"rebudget/internal/cmpsim"
	"rebudget/internal/experiments"
	"rebudget/internal/market"
	"rebudget/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig1|fig2|fig3|fig4|fig5|table1|convergence|tenant|resilience|ablations|all")
		cores   = flag.Int("cores", 64, "CMP size for fig4/fig5/convergence (multiple of 4)")
		bundles = flag.Int("bundles", 40, "random bundles per category for fig4/convergence")
		seed    = flag.Uint64("seed", 1, "workload generation seed")
		epochs  = flag.Int("epochs", 12, "measured epochs per fig5 simulation")
		samples = flag.Int("samples", 6000, "max simulated L2 accesses per core per epoch (fig5)")
		csvDir  = flag.String("csv", "", "directory to also write tidy CSV datasets into (fig2/fig4/fig5)")
		workers = flag.Int("workers", 0, "equilibrium round parallelism (0 = GOMAXPROCS, 1 = serial)")
		sweepW  = flag.Int("sweep-workers", 0, "experiment cells run concurrently (0 = GOMAXPROCS, 1 = serial)")
		eqstats = flag.Bool("eqstats", false, "print equilibrium convergence-cost counters to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rebudget-bench:", err)
		os.Exit(1)
	}
	err = run(*exp, *cores, *bundles, *seed, *epochs, *samples, *csvDir, *workers, *sweepW, *eqstats)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rebudget-bench:", err)
		os.Exit(1)
	}
}

// startProfiles starts the optional pprof captures; the returned function
// finalises them (stops the CPU profile, writes the heap profile).
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebudget-bench: memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rebudget-bench: memprofile:", err)
		}
	}, nil
}

func run(exp string, cores, bundles int, seed uint64, epochs, samples int, csvDir string, workers, sweepWorkers int, eqstats bool) error {
	w := os.Stdout
	// The experiment engine fans independent cells (chips, bundles,
	// fault-rate points) across sweepWorkers goroutines; results are
	// bit-identical at any worker count, so the knob only trades wall time
	// against CPU. It composes with -workers, the within-equilibrium round
	// parallelism — set both wide and the host oversubscribes.
	eng := experiments.Engine{Workers: sweepWorkers}
	// Equilibrium profiling and the worker knob thread through every
	// analytic-market experiment; detailed simulations carry their own
	// per-chip profile (Result.Equilibrium) and take workers via
	// cmpsim.Config.MarketWorkers.
	var prof metrics.EquilibriumProfile
	mechs := experiments.InstrumentedMechanisms(func(mc market.Config) market.Config {
		mc.Workers = workers
		mc.Observer = prof.Observe
		return mc
	})
	defer func() {
		if eqstats {
			fmt.Fprintln(os.Stderr, "rebudget-bench:", prof.Snapshot())
		}
	}()
	want := func(name string) bool { return exp == "all" || exp == name || strings.HasPrefix(name, exp) }
	ran := false
	writeCSV := func(name string, emit func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return emit(f)
	}

	if want("table1") {
		ran = true
		experiments.RenderTable1(w)
		fmt.Fprintln(w)
	}
	if want("fig1") {
		ran = true
		experiments.RenderFig1(w, experiments.Fig1(21))
		fmt.Fprintln(w)
	}
	if want("fig2") {
		ran = true
		curves, err := experiments.Fig2()
		if err != nil {
			return err
		}
		experiments.RenderFig2(w, curves)
		if err := writeCSV("fig2.csv", func(f io.Writer) error {
			return experiments.WriteFig2CSV(f, curves)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if want("fig3") {
		ran = true
		r, err := experiments.Fig3()
		if err != nil {
			return err
		}
		experiments.RenderFig3(w, r)
		fmt.Fprintln(w)
	}
	if want("fig4") || exp == "convergence" {
		ran = true
		fmt.Fprintf(w, "# running phase-1 sweep: %d cores × %d bundles/category …\n", cores, bundles)
		s, err := eng.RunSweep(cores, bundles, seed, mechs)
		if err != nil {
			return err
		}
		switch exp {
		case "fig4a":
			experiments.RenderFig4(w, s)
		case "fig4b":
			experiments.RenderFig4(w, s)
		case "convergence":
			experiments.RenderConvergence(w, s)
		default:
			experiments.RenderFig4(w, s)
			fmt.Fprintln(w)
			experiments.RenderCategorySummary(w, s)
			fmt.Fprintln(w)
			experiments.RenderConvergence(w, s)
		}
		if err := writeCSV("fig4.csv", func(f io.Writer) error {
			return experiments.WriteSweepCSV(f, s)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if want("fig5") {
		ran = true
		cfg := cmpsim.DefaultConfig(cores)
		cfg.Epochs = epochs
		cfg.MaxAccessesPerCoreEpoch = samples
		cfg.Seed = seed
		cfg.MarketWorkers = workers
		fmt.Fprintf(w, "# running detailed simulation: %d cores, %d epochs, one bundle/category …\n",
			cores, epochs)
		r, err := eng.RunFig5(cfg, seed, nil)
		if err != nil {
			return err
		}
		experiments.RenderFig5(w, r)
		if err := writeCSV("fig5.csv", func(f io.Writer) error {
			return experiments.WriteFig5CSV(f, r)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if want("tenant") {
		ran = true
		fmt.Fprintf(w, "# running tenant economy frontier: 9 tenants × 240 epochs …\n")
		r, err := experiments.RunTenantFrontier(9, 240, seed, nil)
		if err != nil {
			return err
		}
		experiments.RenderTenantFrontier(w, r)
		if err := writeCSV("tenant_frontier.csv", func(f io.Writer) error {
			return experiments.WriteTenantFrontierCSV(f, r)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if exp == "resilience" {
		// Explicit-only (not part of "all"): the sweep injects faults, so
		// it is a diagnostic rather than a paper figure.
		ran = true
		cfg := cmpsim.DefaultConfig(cores)
		cfg.Epochs = epochs
		cfg.MaxAccessesPerCoreEpoch = samples
		cfg.Seed = seed
		fmt.Fprintf(w, "# running resilience sweep: %d cores, %d epochs …\n", cores, epochs)
		r, err := eng.RunResilience(cfg, seed, nil)
		if err != nil {
			return err
		}
		experiments.RenderResilience(w, r)
		fmt.Fprintln(w)
	}
	if want("validate") {
		ran = true
		cfg := cmpsim.DefaultConfig(cores)
		cfg.Epochs = epochs
		cfg.MaxAccessesPerCoreEpoch = samples
		rows, mae, err := experiments.PhaseValidation(cfg, seed)
		if err != nil {
			return err
		}
		experiments.RenderValidation(w, rows, mae)
		fmt.Fprintln(w)
	}
	if exp == "all" || exp == "ablations" || exp == "ablation-granularity" {
		ran = true
		cfg := cmpsim.DefaultConfig(8)
		cfg.Epochs = epochs
		cfg.MaxAccessesPerCoreEpoch = samples
		rows, err := eng.AblationGranularity(cfg)
		if err != nil {
			return err
		}
		experiments.RenderGranularity(w, rows)
		fmt.Fprintln(w)
	}
	if want("ablations") || strings.HasPrefix(exp, "ablation-") {
		type ab struct {
			key  string
			name string
			run  func() ([]experiments.AblationRow, error)
		}
		for _, a := range []ab{
			{"ablation-talus", "Talus convexification on/off", experiments.AblationTalus},
			{"ablation-lambda", "ReBudget low-λ threshold", experiments.AblationLambdaThreshold},
			{"ablation-backoff", "exponential back-off vs fixed step", experiments.AblationBackoff},
			{"ablation-bids", "bid hill-climb granularity", experiments.AblationBidOptimizer},
		} {
			if exp != "all" && exp != "ablations" && exp != a.key {
				continue
			}
			ran = true
			rows, err := a.run()
			if err != nil {
				return err
			}
			experiments.RenderAblation(w, a.name, rows)
			fmt.Fprintln(w)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
