// Command rebudget-chaos is the chaos soak harness for the sharded
// serving tier: it boots N in-process rebudgetd shards over one shared,
// fault-injected snapshot store, puts a rebudget-router in front of them
// with a chaos transport on the proxy data path, drives a mixed
// market/sim session population through the tier while a seeded schedule
// kills and restarts shards, partitions and heals their data paths,
// spikes injected latency, corrupts stored snapshots and — mid-outage —
// grows the tier by a shard through the router's elastic membership
// (-shard-adds), and then asserts what robustness actually means here:
//
//   - zero lost sessions: every session converges to its target epoch
//     count after the chaos ends (failover + snapshot rehydration, or a
//     deterministic cold restart when its snapshot was corrupted);
//   - bit-identity: every session's final allocation state (allocations,
//     budgets, utilities, chip frequencies) is byte-identical to an
//     undisturbed baseline run of the same specs — interruptions may
//     cost availability, never correctness;
//   - bounded client-visible error rate during the soak;
//   - the router's circuit breakers visibly opened (transitions in
//     /metrics) and the snapshot checksum path visibly caught the
//     scripted corruption (corrupt/verified counters in /metrics).
//
// The schedule, the network faults and the disk faults are all derived
// from -seed; -print-schedule prints the event list and exits, which is
// how scripts/chaos_smoke.sh checks that a seed reproduces its run.
//
// Usage:
//
//	rebudget-chaos -seed 7 -steps 160 -sessions 6 -shards 2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"rebudget/internal/chaos"
	"rebudget/internal/router"
	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

func main() { os.Exit(run()) }

// harness owns the whole in-process tier.
type harness struct {
	log    *slog.Logger
	quiet  *slog.Logger
	inj    *chaos.Injector
	tr     *chaos.Transport
	fstore *chaos.FaultySnapshotStore
	shards []*shardProc
	rt     *router.Router
	rtHTTP *http.Server
	rtAddr string

	baseLatencyRate float64

	shardsAdded    int // add-shard events that actually admitted a shard
	movedByElastic int // sessions those admissions scheduled for migration
}

// shardProc is one in-process rebudgetd shard that can be killed and
// restarted on a stable address.
type shardProc struct {
	idx  int
	addr string // host:port, fixed after first start
	srv  *server.Server
	hs   *http.Server
	down bool
}

func (s *shardProc) base() string { return "http://" + s.addr }

func (h *harness) startShard(s *shardProc) error {
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for try := 0; try < 20; try++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("shard %d listen %s: %w", s.idx, addr, err)
	}
	s.addr = ln.Addr().String()
	s.srv = server.New(server.Config{Snapshots: h.fstore, Logger: h.quiet})
	s.hs = &http.Server{Handler: s.srv.Handler()}
	go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(s.hs, ln)
	s.down = false
	return nil
}

// killShard hard-stops the listener mid-traffic, then closes the daemon —
// which snapshots every resident session to the shared store, the state a
// drain-on-SIGTERM leaves behind. Stranded sessions rehydrate on the
// surviving shards the moment the router fails their next request over.
func (h *harness) killShard(s *shardProc) {
	if s.down {
		return
	}
	_ = s.hs.Close()
	s.srv.Close()
	s.srv, s.hs = nil, nil
	s.down = true
}

func run() int {
	var (
		seed         = flag.Uint64("seed", 1, "chaos seed: schedule, network and disk faults all derive from it")
		steps        = flag.Int("steps", 160, "driver steps in the soak loop")
		nSessions    = flag.Int("sessions", 6, "sessions in the mixed market/sim population")
		nShards      = flag.Int("shards", 2, "rebudgetd shards behind the router")
		shardAdds    = flag.Int("shard-adds", 1, "mid-outage shard additions to script (0 keeps the tier static)")
		printSched   = flag.Bool("print-schedule", false, "print the seeded chaos schedule and exit")
		stepSleep    = flag.Duration("step-sleep", 5*time.Millisecond, "sleep between driver steps (lets probes interleave)")
		maxErrorRate = flag.Float64("max-error-rate", 0.6, "fail if client-visible soak errors exceed this fraction")
		verbose      = flag.Bool("v", false, "log every chaos event and recovery action")
	)
	flag.Parse()

	ids := make([]string, *nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("cs-%d", i)
	}
	events := chaos.NewSchedule(chaos.ScheduleConfig{
		Seed: *seed, Steps: *steps, Shards: *nShards, Sessions: ids,
		Partitions: 2, Kills: 1, LatencySpikes: 1, Corruptions: 2,
		ShardAdds: *shardAdds,
	})
	if *printSched {
		for _, e := range events {
			fmt.Println(e)
		}
		return 0
	}

	h := &harness{
		quiet:           slog.New(slog.NewTextHandler(io.Discard, nil)),
		baseLatencyRate: 0.05,
	}
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	h.log = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// Per-session epoch target: low enough that the population converges
	// well inside the soak, high enough that kills land mid-progress.
	target := *steps / (2 * *nSessions)
	if target < 4 {
		target = 4
	}
	specs := make(map[string]server.SessionSpec, *nSessions)
	for i, id := range ids {
		specs[id] = specFor(i, id)
	}

	fmt.Printf("chaos: seed=%d steps=%d sessions=%d shards=%d target-epochs=%d events=%d\n",
		*seed, *steps, *nSessions, *nShards, target, len(events))

	// --- undisturbed baseline: same specs, one clean daemon, no chaos ---
	baseline, baselineNext, err := baselineViews(h.quiet, ids, specs, target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: baseline run failed: %v\n", err)
		return 1
	}
	fmt.Printf("chaos: baseline captured (%d sessions, comparison epoch %d)\n", len(baseline), target+1)

	// --- the tier under test ---
	snapDir, err := os.MkdirTemp("", "rebudget-chaos-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	defer os.RemoveAll(snapDir)
	files, err := server.NewFileSnapshotStore(snapDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	// Background network noise on the data path; the scripted windows
	// (partitions, latency spikes) layer on top. Disk-fault rates stay
	// zero here: disk damage comes only from scripted corruption events,
	// so the zero-lost-sessions invariant is assertable per seed.
	h.inj = chaos.New(chaos.Config{
		Seed:        *seed,
		LatencyRate: h.baseLatencyRate,
		LatencyMin:  500 * time.Microsecond,
		LatencyMax:  3 * time.Millisecond,
		DropRate:    0.02,
		Blip5xxRate: 0.02,
		ResetRate:   0.02,
	})
	h.tr = chaos.NewTransport(h.inj, nil)
	h.fstore = chaos.NewFaultySnapshotStore(files, h.inj)

	for i := 0; i < *nShards; i++ {
		s := &shardProc{idx: i}
		if err := h.startShard(s); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			return 1
		}
		h.shards = append(h.shards, s)
	}
	bases := make([]string, len(h.shards))
	for i, s := range h.shards {
		bases[i] = s.base()
	}
	// Elastic membership is armed only when the schedule actually grows
	// the tier; a static schedule runs the pre-elastic router unchanged.
	h.rt, err = router.New(router.Config{
		Backends:          bases,
		ProbeInterval:     50 * time.Millisecond,
		Transport:         h.tr,
		Breaker:           router.BreakerConfig{FailureThreshold: 3, OpenTimeout: 400 * time.Millisecond},
		Elastic:           hasShardAdds(events),
		MigrationInterval: 20 * time.Millisecond,
		MigrationBudget:   4,
		Logger:            h.quiet,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: router:", err)
		return 1
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	h.rtAddr = rln.Addr().String()
	h.rtHTTP = &http.Server{Handler: h.rt.Handler()}
	go func() { _ = h.rtHTTP.Serve(rln) }()

	ctx := context.Background()
	rc := client.New("http://"+h.rtAddr, client.WithTimeout(10*time.Second))

	// Place the population through the router (chaos background noise is
	// already live, so creates get a short retry loop; a 409 means an
	// earlier attempt landed despite its torn response).
	for _, id := range ids {
		if err := createWithRetry(ctx, rc, specs[id]); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: placing %s: %v\n", id, err)
			return 1
		}
	}
	fmt.Printf("chaos: %d sessions placed through the router at %s\n", len(ids), h.rtAddr)

	// --- the soak ---
	byStep := make(map[int][]chaos.Event)
	for _, e := range events {
		byStep[e.Step] = append(byStep[e.Step], e)
	}
	var attempts, errs, notFound int
	epochs := make(map[string]int64, len(ids))
	for step := 1; step <= *steps; step++ {
		for _, e := range byStep[step] {
			h.apply(e)
		}
		id := ids[step%len(ids)]
		v, err := rc.GetSession(ctx, id)
		attempts++
		switch {
		case err == nil:
			epochs[id] = v.Epochs
			if v.Epochs < int64(target) {
				attempts++
				if sv, serr := rc.StepEpoch(ctx, id); serr != nil {
					errs++
				} else {
					epochs[id] = sv.Epochs
				}
			}
		case isStatus(err, http.StatusNotFound):
			// A stranded session whose snapshot hasn't landed yet (or was
			// corrupted): survivors answer an honest 404. Recovery happens
			// in the convergence phase, once routing is stable again.
			notFound++
			errs++
		default:
			errs++
		}
		time.Sleep(*stepSleep)
	}
	errRate := float64(errs) / float64(attempts)
	fmt.Printf("chaos: soak done: %d attempts, %d errors (%.1f%%), %d not-found\n",
		attempts, errs, 100*errRate, notFound)

	// --- quiesce: end every disturbance, let probes re-converge ---
	h.inj.SetLatencyRate(h.baseLatencyRate)
	for _, s := range h.shards {
		h.tr.Heal(s.base())
		if s.down {
			if err := h.startShard(s); err != nil {
				fmt.Fprintln(os.Stderr, "chaos: restarting shard:", err)
				return 1
			}
		}
	}
	time.Sleep(300 * time.Millisecond) // a few probe sweeps

	// --- convergence: every session must reach the target ---
	recreated := 0
	converged := false
	for round := 0; round < 50 && !converged; round++ {
		converged = true
		for _, id := range ids {
			v, err := rc.GetSession(ctx, id)
			if isStatus(err, http.StatusNotFound) {
				// The snapshot is gone (scripted corruption): a cold
				// restart from the same spec is deterministic, so the
				// session still converges to the baseline state.
				if err := createWithRetry(ctx, rc, specs[id]); err != nil {
					fmt.Fprintf(os.Stderr, "chaos: recreating %s: %v\n", id, err)
					return 1
				}
				recreated++
				converged = false
				continue
			}
			if err != nil {
				converged = false
				continue
			}
			for v.Epochs < int64(target) {
				sv, serr := rc.StepEpoch(ctx, id)
				if serr != nil {
					converged = false
					break
				}
				v = sv
			}
		}
		if !converged {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !converged {
		fmt.Fprintln(os.Stderr, "chaos: FAIL: sessions did not converge after the chaos ended (lost sessions)")
		return 1
	}

	// --- bit-identity against the baseline: compute one fresh epoch per
	// session through the router and require it to match the undisturbed
	// run's same epoch. Sessions that survived in memory continue from live
	// state; sessions that failed over or restarted continue from restored
	// snapshots; cold-restarted sessions recomputed the whole trajectory —
	// all three paths must land on the same bytes. Background chaos noise
	// is still live, so each step retries through transient blips.
	mismatches := 0
	for _, id := range ids {
		v, err := driveTo(ctx, rc, id, int64(target+1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: FAIL: final epoch of %s: %v\n", id, err)
			return 1
		}
		got, err := canonicalView(v)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			return 1
		}
		if got != baseline[id] {
			mismatches++
			fmt.Fprintf(os.Stderr, "chaos: FAIL: %s diverged from the undisturbed baseline\n  baseline: %s\n  chaos:    %s\n",
				id, baseline[id], got)
		}
	}
	fmt.Printf("chaos: converged: %d/%d sessions bit-identical to baseline, %d cold restarts\n",
		len(ids)-mismatches, len(ids), recreated)

	// --- router observability: the breakers must have visibly worked ---
	mtext, err := rc.Metrics(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: scraping router metrics:", err)
		return 1
	}
	opens := metricSum(mtext, "rebudget_router_breaker_transitions_total", `to="open"`)
	retries := metricSum(mtext, "rebudget_router_retries_total", "")
	failovers := metricSum(mtext, "rebudget_router_failovers_total", "")
	fmt.Printf("chaos: router saw %g breaker opens, %g retries, %g failovers\n", opens, retries, failovers)
	migrations := metricSum(mtext, "rebudget_router_migrations_total", "")
	epoch := metricSum(mtext, "rebudget_router_membership_epoch", "")
	if hasShardAdds(events) {
		fmt.Printf("chaos: elastic: membership epoch %g, %g sessions migrated\n", epoch, migrations)
	}

	// --- tear the tier down; every resident session snapshots out ---
	_ = h.rtHTTP.Close()
	h.rt.Close()
	for _, s := range h.shards {
		h.killShard(s)
	}

	// --- snapshot-integrity epilogue, deterministic by construction:
	// corrupt one stored snapshot, boot a fresh daemon on the store, and
	// require the checksum to turn the rot into a 404 cold start while an
	// intact sibling restores bit-identically — with both outcomes
	// visible in the daemon's /metrics.
	if err := h.fstore.CorruptNow(ids[0], *seed^0xC0FFEE); err != nil {
		fmt.Fprintln(os.Stderr, "chaos: scripting epilogue corruption:", err)
		return 1
	}
	fresh := &shardProc{idx: len(h.shards)}
	if err := h.startShard(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	defer h.killShard(fresh)
	dc := client.New(fresh.base())
	if _, err := dc.GetSession(ctx, ids[0]); !isStatus(err, http.StatusNotFound) {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: corrupted snapshot should cold-start (404), got %v\n", err)
		return 1
	}
	v, err := dc.GetSession(ctx, ids[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: intact snapshot did not rehydrate: %v\n", err)
		return 1
	}
	// The stored snapshot may be stale: a transient mis-route during the
	// soak can rehydrate a second copy of a session on another shard at
	// whatever epoch the store held then, that copy idles there, and at
	// teardown whichever copy drains last writes the store. Determinism
	// makes staleness harmless — every copy is on the same trajectory, it
	// only costs replay — so step the restored engine to a fixed epoch
	// and require bit-identity there. Ahead of the live copy would be a
	// real bug, though.
	if v.Epochs > int64(target+1) {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: rehydrated %s at %d epochs, past the live copy's %d\n",
			ids[1], v.Epochs, target+1)
		return 1
	}
	for v.Epochs < int64(target+2) {
		if v, err = dc.StepEpoch(ctx, ids[1]); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: FAIL: stepping rehydrated %s: %v\n", ids[1], err)
			return 1
		}
	}
	got, err := canonicalView(v)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		return 1
	}
	if got != baselineNext[ids[1]] {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: rehydrated %s diverged from baseline\n  baseline: %s\n  chaos:    %s\n",
			ids[1], baselineNext[ids[1]], got)
		return 1
	}
	stext, err := dc.Metrics(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: scraping shard metrics:", err)
		return 1
	}
	corrupt := metricSum(stext, "rebudgetd_snapshots_total", `op="corrupt"`)
	verified := metricSum(stext, "rebudgetd_snapshots_total", `op="verified"`)
	fmt.Printf("chaos: epilogue: corrupt snapshots caught=%g, checksum-verified restores=%g\n", corrupt, verified)

	// --- verdict ---
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: "+format+"\n", args...)
		return 1
	}
	if mismatches > 0 {
		return fail("%d sessions diverged from the undisturbed baseline", mismatches)
	}
	if errRate > *maxErrorRate {
		return fail("client error rate %.1f%% exceeds bound %.1f%%", 100*errRate, 100**maxErrorRate)
	}
	if hasShardOutages(events) && opens < 1 {
		return fail("schedule had shard outages but no breaker ever opened")
	}
	if h.shardsAdded > 0 && epoch < float64(1+h.shardsAdded) {
		return fail("%d shards admitted but membership epoch is %g", h.shardsAdded, epoch)
	}
	if h.movedByElastic > 0 && migrations < 1 {
		return fail("shard admission scheduled %d moves but no migration completed", h.movedByElastic)
	}
	if hasShardAdds(events) && h.shardsAdded == 0 {
		return fail("schedule had add-shard events but none admitted a shard")
	}
	if corrupt < 1 {
		return fail("scripted corruption was not caught by the snapshot checksum")
	}
	if verified < 1 {
		return fail("no checksum-verified restore was recorded")
	}
	fmt.Println("chaos: PASS")
	return 0
}

// apply executes one scripted chaos event against the live tier.
func (h *harness) apply(e chaos.Event) {
	h.log.Info("chaos event", "event", e.String())
	switch e.Kind {
	case chaos.EventPartition:
		h.tr.Partition(h.shards[e.Shard%len(h.shards)].base())
	case chaos.EventHeal:
		h.tr.Heal(h.shards[e.Shard%len(h.shards)].base())
	case chaos.EventKillShard:
		h.killShard(h.shards[e.Shard%len(h.shards)])
	case chaos.EventRestartShard:
		s := h.shards[e.Shard%len(h.shards)]
		if s.down {
			if err := h.startShard(s); err != nil {
				h.log.Warn("shard restart failed", "shard", s.idx, "err", err)
			}
		}
	case chaos.EventLatencySpike:
		h.inj.SetLatencyRate(0.5)
	case chaos.EventLatencyNormal:
		h.inj.SetLatencyRate(h.baseLatencyRate)
	case chaos.EventCorruptSnapshot:
		// Best effort: the session may not have a stored snapshot yet.
		if err := h.fstore.CorruptNow(e.Session, e.Draw); err != nil {
			h.log.Info("corruption event found no snapshot", "session", e.Session)
		}
	case chaos.EventAddShard:
		h.addShard()
	}
}

// addShard grows the tier mid-run: boot a fresh shard on the shared
// snapshot store and admit it through the router's elastic membership.
// The admission probe rides the chaos transport, so background noise can
// eat an attempt — retry a few times before conceding the event.
func (h *harness) addShard() {
	s := &shardProc{idx: len(h.shards)}
	if err := h.startShard(s); err != nil {
		h.log.Warn("add-shard event could not boot a shard", "err", err)
		return
	}
	h.shards = append(h.shards, s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for try := 0; try < 8; try++ {
		moved, err := h.rt.AddShard(ctx, s.base())
		if err == nil {
			h.shardsAdded++
			h.movedByElastic += moved
			h.log.Info("shard added mid-run", "shard", s.idx, "addr", s.addr, "moved", moved)
			return
		}
		h.log.Info("add-shard admission retry", "try", try, "err", err)
		time.Sleep(time.Duration(try+1) * 50 * time.Millisecond)
	}
	h.log.Warn("add-shard event never admitted its shard", "shard", s.idx)
}

// specFor builds the mixed population: even slots re-solve the analytic
// market each epoch, odd slots step the execution-driven sim chip.
func specFor(i int, id string) server.SessionSpec {
	if i%2 == 0 {
		return server.SessionSpec{
			ID: id, Workload: server.WorkloadSpec{Fig3: true}, Mechanism: "rebudget-0.05",
		}
	}
	return server.SessionSpec{
		ID: id, Mode: server.ModeSim,
		Workload:  server.WorkloadSpec{Fig3: true},
		Mechanism: "rebudget-0.05",
		Sim:       &server.SimSpec{Seed: uint64(i), WarmupEpochs: 1, ReallocEvery: 1},
	}
}

// baselineViews runs the population on one clean daemon, no router and no
// chaos, and captures each session's canonical view after epochs target+1
// and target+2. A view only carries allocation/sim detail computed by a
// live epoch — a rehydrated session holds restored engine state but no
// rendered view — so the chaos run converges everyone to target and then
// the comparison epoch (target+1) is computed fresh on both sides. That is
// the stronger claim anyway: the warm-restored engine must continue the
// undisturbed trajectory bit-for-bit, not merely echo a stored view. The
// second capture (target+2) serves the snapshot-integrity epilogue the
// same way, one epoch later.
func baselineViews(quiet *slog.Logger, ids []string, specs map[string]server.SessionSpec, target int) (map[string]string, map[string]string, error) {
	srv := server.New(server.Config{Logger: quiet})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	c := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	at1 := make(map[string]string, len(ids))
	at2 := make(map[string]string, len(ids))
	for _, id := range ids {
		if _, err := c.CreateSession(ctx, specs[id]); err != nil {
			return nil, nil, fmt.Errorf("baseline create %s: %w", id, err)
		}
		if _, err := c.StepEpochs(ctx, id, target); err != nil {
			return nil, nil, fmt.Errorf("baseline step %s: %w", id, err)
		}
		v, err := c.StepEpoch(ctx, id)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline step %s: %w", id, err)
		}
		if at1[id], err = canonicalView(v); err != nil {
			return nil, nil, err
		}
		if v, err = c.StepEpoch(ctx, id); err != nil {
			return nil, nil, fmt.Errorf("baseline step %s: %w", id, err)
		}
		if at2[id], err = canonicalView(v); err != nil {
			return nil, nil, err
		}
	}
	return at1, at2, nil
}

// canonicalView scrubs the run-dependent fields out of a view — wall
// clocks, solver iteration counts (warm restores legitimately re-converge
// in fewer steps), equilibrium telemetry — and returns the rest as JSON.
// What survives is exactly the state the paper's numerics determine:
// allocations, budgets, utilities, lambdas, bounds, chip frequencies and
// epoch counts. Two runs agree here only if the allocation pipeline was
// bit-identical.
func canonicalView(v server.SessionView) (string, error) {
	v.CreatedAt, v.LastUsed = time.Time{}, time.Time{}
	v.LastError = ""
	if v.Alloc != nil {
		a := *v.Alloc
		a.Iterations = 0
		a.EquilibriumRuns = 0
		v.Alloc = &a
	}
	if v.Sim != nil {
		s := *v.Sim
		s.Equilibrium = server.EquilibriumView{}
		v.Sim = &s
	}
	buf, err := json.Marshal(v)
	return string(buf), err
}

// createWithRetry places a session, retrying through transient chaos. A
// 409 means a prior attempt's create landed but its response was eaten —
// the session exists, which is what we wanted.
func createWithRetry(ctx context.Context, c *client.Client, spec server.SessionSpec) error {
	var last error
	for try := 0; try < 8; try++ {
		_, err := c.CreateSession(ctx, spec)
		if err == nil || isStatus(err, http.StatusConflict) {
			return nil
		}
		last = err
		time.Sleep(time.Duration(try+1) * 25 * time.Millisecond)
	}
	return last
}

// getWithRetry reads id's view, retrying through transient chaos — which
// includes 404s: a background drop can briefly mark the primary unhealthy,
// failing the request over to a shard that holds neither the session nor a
// snapshot, and that shard honestly answers "no session". The probes flip
// the primary green again within a sweep, so a session that still 404s
// after the whole backoff ladder really is lost and the caller fails.
func getWithRetry(ctx context.Context, c *client.Client, id string) (server.SessionView, error) {
	var v server.SessionView
	var err error
	for try := 0; try < 10; try++ {
		if v, err = c.GetSession(ctx, id); err == nil {
			return v, nil
		}
		time.Sleep(time.Duration(try+1) * 25 * time.Millisecond)
	}
	return v, err
}

// driveTo steps id up to exactly goal epochs and returns the view there,
// retrying through transient chaos. Every iteration re-reads before
// stepping, which handles all the ways chaos splits observation from
// effect: a reset that ate a committed step's response (the re-read sees
// the advance, no double-step), and a mis-route that lands on a stale
// rehydrated copy of the session on another shard (the loop just steps
// that copy up the same deterministic trajectory — replay cost, not
// divergence). A copy past goal means the harness double-stepped: a bug,
// reported, never papered over.
func driveTo(ctx context.Context, c *client.Client, id string, goal int64) (server.SessionView, error) {
	var v server.SessionView
	var lastErr error
	for try := 0; try < 20+2*int(goal); try++ {
		ve, err := c.GetSession(ctx, id)
		if err != nil {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		v = ve
		if v.Epochs == goal {
			return v, nil
		}
		if v.Epochs > goal {
			return v, fmt.Errorf("session at %d epochs, past goal %d", v.Epochs, goal)
		}
		if sv, err := c.StepEpoch(ctx, id); err == nil {
			if sv.Epochs == goal {
				return sv, nil
			}
		} else {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
		}
	}
	return v, fmt.Errorf("did not reach %d epochs (last error: %v)", goal, lastErr)
}

func isStatus(err error, code int) bool {
	var ae *client.APIError
	return errors.As(err, &ae) && ae.Status == code
}

func hasShardOutages(events []chaos.Event) bool {
	for _, e := range events {
		if e.Kind == chaos.EventPartition || e.Kind == chaos.EventKillShard {
			return true
		}
	}
	return false
}

func hasShardAdds(events []chaos.Event) bool {
	for _, e := range events {
		if e.Kind == chaos.EventAddShard {
			return true
		}
	}
	return false
}

// metricSum sums the values of name's samples whose label set contains
// labelSub (every sample when labelSub is empty) in a Prometheus text
// exposition.
func metricSum(text, name, labelSub string) float64 {
	total := 0.0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Only "{labels} value" or " value" continue this metric; anything
		// else is a longer metric name sharing the prefix.
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil {
			total += v
		}
	}
	return total
}
