// Command rebudgetd is the allocation-as-a-service daemon: an HTTP/JSON
// server hosting many concurrent chip sessions, each re-running its
// market-based allocation mechanism once per epoch with warm-started
// equilibria (§4.3's reallocation loop, lifted into a multi-tenant
// service). See DESIGN.md, "Serving layer", and README for the API.
//
// Usage:
//
//	rebudgetd -addr :8344 -max-sessions 128 -idle-ttl 10m
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, new
// sessions are refused, in-flight requests finish, then sessions close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rebudget/internal/cluster"
	"rebudget/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8344", "listen address")
		maxSessions = flag.Int("max-sessions", 128, "resident session cap (LRU eviction beyond it)")
		idleTTL     = flag.Duration("idle-ttl", 10*time.Minute, "evict sessions idle this long (0 disables)")
		workers     = flag.Int("workers", 0, "allocation worker slots (0 = GOMAXPROCS)")
		maxWaiting  = flag.Int("max-waiting", 0, "queued allocation requests before 429 (0 = default)")
		admission   = flag.String("admission", server.AdmissionCost, "dispatcher admission pricing: cost (weighted units from per-session estimates) or count (one unit per request, the pre-cost contract)")
		costCap     = flag.Float64("cost-capacity", 0, "dispatcher budget in cost units under -admission cost (0 = 8x workers)")
		maxQueued   = flag.Float64("max-queued-cost", 0, "queued cost units before 429 under -admission cost (0 = 4x capacity)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request allocation deadline")
		drainWait   = flag.Duration("drain-wait", 10*time.Second, "graceful shutdown budget")
		snapshotDir = flag.String("snapshot-dir", "", "persist session snapshots here; evicted/drained sessions rehydrate on next touch (empty disables)")
		snapshotURL = flag.String("snapshot-url", "", "rebudget-snapstore base URL for snapshots; with -snapshot-dir too, writes replicate to both and reads pick the freshest")
		sessionRPS  = flag.Float64("session-rps", 0, "per-session epoch budget, epochs/sec (0 disables rate limiting)")
		logFormat   = flag.String("log", "text", "log format: text or json")

		storeSegments = flag.Int("store-segments", 0, "session-store lock stripes, rounded up to a power of two (0 = auto-size from -max-sessions; 1 = the pre-density global-LRU store)")
		parkAfter     = flag.Duration("park-after", 0, "hibernate sessions idle this long: loop goroutine exits, engine is dropped, next touch rebuilds bit-identically (0 = 5m default, negative disables)")
		noWheel       = flag.Bool("no-ticker-wheel", false, "give each ticker session its own time.Ticker instead of the shared timer wheel (the pre-density behaviour)")
		wheelGran     = flag.Duration("wheel-granularity", 0, "timer-wheel tick; ticker periods quantise up to it (0 = 20ms)")
		perSessionMet = flag.Bool("metrics-per-session", false, "export per-session-id debug series on /metrics (unbounded cardinality; default keeps the bounded histogram + top-K)")
		apiKey        = flag.String("api-key", "", "require this bearer token on mutating endpoints; GET/HEAD, /healthz and /metrics stay open (empty disables)")

		tenants       = flag.String("tenants", "", "arm the tenant budget economy: comma-separated path[:share[:weight[:floor]]] entries (e.g. acme/prod:3:2:0.5,free); empty with -tenant-epoch 0 disables tenancy")
		tenantEpoch   = flag.Duration("tenant-epoch", 0, "tenant rebalance period (0 = 250ms when tenancy is armed)")
		tenantCap     = flag.Float64("tenant-capacity", 0, "tenant-tree root budget in cost units (0 = the dispatcher cost capacity)")
		tenantFloor   = flag.Float64("tenant-mbr", 0, "default per-tenant fairness floor in (0,1] (0 = 0.25)")
		tenantStatic  = flag.Bool("tenant-static", false, "freeze tenants at static quotas (no lending; the A/B control)")
		tenantDefault = flag.String("tenant-default", "", "tenant label for unlabelled sessions (empty = \"default\")")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rebudgetd: unknown -log format %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	var stores []server.SnapshotStore
	if *snapshotDir != "" {
		fs, err := server.NewFileSnapshotStore(*snapshotDir)
		if err != nil {
			log.Error("snapshot store failed", "dir", *snapshotDir, "err", err)
			os.Exit(1)
		}
		stores = append(stores, fs)
	}
	if *snapshotURL != "" {
		stores = append(stores, cluster.NewHTTPSnapshotStore(*snapshotURL, nil))
	}
	var snaps server.SnapshotStore
	switch len(stores) {
	case 0:
	case 1:
		snaps = stores[0]
	default:
		rs, err := cluster.NewReplicatedSnapshotStore(stores...)
		if err != nil {
			log.Error("replicated snapshot store failed", "err", err)
			os.Exit(1)
		}
		snaps = rs
	}

	// Tenancy is armed by any -tenant* flag; with none set, admission keeps
	// the flat dispatcher budget (the pre-tenancy contract, bit-identical).
	var tenancy *server.TenancyConfig
	if *tenants != "" || *tenantEpoch > 0 || *tenantCap > 0 || *tenantFloor > 0 || *tenantStatic || *tenantDefault != "" {
		specs, err := server.ParseTenants(*tenants)
		if err != nil {
			log.Error("bad -tenants", "err", err)
			os.Exit(2)
		}
		if *tenantFloor < 0 || *tenantFloor > 1 {
			log.Error("bad -tenant-mbr", "floor", *tenantFloor, "want", "(0,1]")
			os.Exit(2)
		}
		tenancy = &server.TenancyConfig{
			Tenants:        specs,
			Epoch:          *tenantEpoch,
			Capacity:       *tenantCap,
			MBRFloor:       *tenantFloor,
			DisableLending: *tenantStatic,
			DefaultTenant:  *tenantDefault,
		}
	}

	srv := server.New(server.Config{
		MaxSessions:    *maxSessions,
		IdleTTL:        *idleTTL,
		Workers:        *workers,
		MaxWaiting:     *maxWaiting,
		Admission:      *admission,
		CostCapacity:   *costCap,
		MaxQueuedCost:  *maxQueued,
		RequestTimeout: *timeout,
		Snapshots:      snaps,
		SessionRPS:     *sessionRPS,
		Tenancy:        tenancy,
		Logger:         log,

		StoreSegments:      *storeSegments,
		ParkAfter:          *parkAfter,
		DisableTickerWheel: *noWheel,
		WheelGranularity:   *wheelGran,
		PerSessionMetrics:  *perSessionMet,
		APIKey:             *apiKey,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	log.Info("rebudgetd listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("signal received, draining", "signal", sig.String())
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
		srv.Close()
		log.Info("rebudgetd stopped")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			srv.Close()
			os.Exit(1)
		}
	}
}
