// Command rebudget-loadgen drives a rebudgetd deployment (one daemon or a
// sharded tier behind rebudget-router) with a configurable mix of cheap and
// expensive allocation sessions, and reports epoch-latency percentiles,
// throughput, and 429 rate as JSON. It is the measurement harness behind
// the cost-based-admission A/B: run it twice — against -admission cost and
// -admission count daemons — and compare the cheap class's p99.
//
// Usage (closed loop, 90/10 cheap/expensive, 30 s):
//
//	rebudget-loadgen -target http://127.0.0.1:8360 \
//	    -sessions 40 -cheap-frac 0.9 -concurrency 16 -duration 30s
//
// Open loop (Poisson arrivals at 200 epoch requests/sec):
//
//	rebudget-loadgen -mode open -rate 200 -arrival poisson ...
//
// Tenant mix (against a daemon running -tenants): label sessions across
// three archetypes — steady offers load continuously, bursty alternates
// 2s on/off, idle trickles — and get a per-tenant report section:
//
//	rebudget-loadgen -tenants web:steady:2,batch:bursty,spare:idle ...
//
// The cheap class is an 8-core equal-share market session (no equilibrium
// search — the floor of the cost scale). The expensive class defaults to a
// 64-core cold-start equilibrium mechanism: warm_start=false forces a full
// solve every epoch, the worst realistic per-epoch cost.
//
// Density mode (-resident N) is the 100k-session harness: create N resident
// sessions with bounded parallelism over pooled connections, then open-loop
// tick a rotating working set while most of the population sits idle (and,
// on a -park-after daemon, hibernates). The report carries create time,
// tick-latency percentiles and a timed /metrics scrape:
//
//	rebudget-loadgen -resident 100000 -rate 500 -working-set 2048 \
//	    -duration 60s -target http://127.0.0.1:8343
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rebudget/internal/server"
	"rebudget/internal/server/client"
)

type class struct {
	name string
	spec server.SessionSpec
	ids  []string
}

// tenantMix is one tenant in the -tenants flag: sessions are spread across
// tenants by weight, and each tenant's offered load follows its archetype —
// the traffic shapes the tenant budget economy trades between.
type tenantMix struct {
	name   string
	arch   string // steady | bursty | idle
	weight float64
}

// eligible reports whether this tenant offers load at elapsed run time t.
// steady always does; bursty alternates 2s on / 2s off; idle trickles one
// short active window (250ms) every 10s — enough to register demand without
// using its budget, so the economy lends it out.
func (tm tenantMix) eligible(t time.Duration) bool {
	switch tm.arch {
	case "bursty":
		return int(t/(2*time.Second))%2 == 0
	case "idle":
		return t%(10*time.Second) < 250*time.Millisecond
	default:
		return true
	}
}

// parseTenantMix parses "name:archetype[:weight],..." (e.g.
// "web:steady:2,batch:bursty,spare:idle").
func parseTenantMix(arg string) ([]tenantMix, error) {
	var out []tenantMix
	for _, item := range strings.Split(arg, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("tenant %q: want name:archetype[:weight]", item)
		}
		tm := tenantMix{name: parts[0], arch: parts[1], weight: 1}
		switch tm.arch {
		case "steady", "bursty", "idle":
		default:
			return nil, fmt.Errorf("tenant %q: unknown archetype %q (want steady, bursty or idle)", tm.name, tm.arch)
		}
		if len(parts) == 3 {
			w, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("tenant %q: bad weight %q", tm.name, parts[2])
			}
			tm.weight = w
		}
		out = append(out, tm)
	}
	return out, nil
}

// classStats accumulates one class's outcomes. Latencies are recorded only
// for successful epoch requests: the A/B question is what service the
// admitted requests got, while rejections are reported separately as a rate.
type classStats struct {
	mu    sync.Mutex
	lat   []float64 // seconds, successes only
	ok    atomic.Int64
	busy  atomic.Int64 // 429s
	errs  atomic.Int64 // transport / 5xx / timeout
	total atomic.Int64
}

func (cs *classStats) record(d time.Duration, err error) {
	cs.total.Add(1)
	switch {
	case err == nil:
		cs.ok.Add(1)
		cs.mu.Lock()
		cs.lat = append(cs.lat, d.Seconds())
		cs.mu.Unlock()
	case client.IsBusy(err):
		cs.busy.Add(1)
	default:
		cs.errs.Add(1)
	}
}

// percentile returns the p-quantile (0..1) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ClassReport is one traffic class's slice of the run report.
type ClassReport struct {
	Sessions   int     `json:"sessions"`
	Requests   int64   `json:"requests"`
	OK         int64   `json:"ok"`
	Busy429    int64   `json:"busy_429"`
	Errors     int64   `json:"errors"`
	Rate429    float64 `json:"rate_429"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	MeanMs     float64 `json:"mean_ms"`
	Throughput float64 `json:"throughput_rps"`
}

// Report is the loadgen's JSON output, one object per run.
type Report struct {
	Label       string                 `json:"label"`
	Target      string                 `json:"target"`
	Mode        string                 `json:"mode"`
	Arrival     string                 `json:"arrival,omitempty"`
	RatePerSec  float64                `json:"rate_per_sec,omitempty"`
	Concurrency int                    `json:"concurrency,omitempty"`
	DurationSec float64                `json:"duration_sec"`
	Sessions    int                    `json:"sessions"`
	Requests    int64                  `json:"requests"`
	OK          int64                  `json:"ok"`
	Busy429     int64                  `json:"busy_429"`
	Errors      int64                  `json:"errors"`
	Rate429     float64                `json:"rate_429"`
	Throughput  float64                `json:"throughput_rps"`
	Classes     map[string]ClassReport `json:"classes"`
	// Tenants breaks the run down by tenant label when -tenants is set, so
	// per-tenant placement and backpressure can be asserted from the report
	// instead of scraping /metrics.
	Tenants map[string]ClassReport `json:"tenants,omitempty"`
	// Density-mode (-resident) fields.
	Resident       int     `json:"resident,omitempty"`
	WorkingSet     int     `json:"working_set,omitempty"`
	CreateSec      float64 `json:"create_sec,omitempty"`
	CreatePerSec   float64 `json:"create_per_sec,omitempty"`
	ScrapeMs       float64 `json:"scrape_ms,omitempty"`
	ScrapeBytes    int64   `json:"scrape_bytes,omitempty"`
}

func main() {
	var (
		target      = flag.String("target", "http://127.0.0.1:8344", "rebudgetd or rebudget-router base URL")
		label       = flag.String("label", "run", "run label recorded in the JSON report")
		sessions    = flag.Int("sessions", 40, "sessions to create before the measured run")
		cheapFrac   = flag.Float64("cheap-frac", 0.9, "fraction of sessions in the cheap class")
		cheapCores  = flag.Int("cheap-cores", 8, "cheap-class bundle size")
		cheapMech   = flag.String("cheap-mech", "equalshare", "cheap-class mechanism")
		expCores    = flag.Int("expensive-cores", 64, "expensive-class bundle size")
		expMech     = flag.String("expensive-mech", "equalbudget", "expensive-class mechanism")
		expWarm     = flag.Bool("expensive-warm", false, "warm-start the expensive class (false = full cold solve per epoch)")
		expSim      = flag.Bool("expensive-sim", false, "run the expensive class on the cmpsim engine instead of the analytic market")
		mode        = flag.String("mode", "closed", "load model: closed (fixed concurrency) or open (timed arrivals)")
		concurrency = flag.Int("concurrency", 16, "closed loop: concurrent workers")
		rate        = flag.Float64("rate", 100, "open loop: mean epoch-request arrivals per second")
		arrival     = flag.String("arrival", "poisson", "open loop: arrival process, poisson or uniform")
		duration    = flag.Duration("duration", 30*time.Second, "measured run length")
		epochBatch  = flag.Int("epoch-batch", 1, "epochs stepped per request")
		prime       = flag.Int("prime", 1, "unmeasured epochs stepped per session, sequentially, before the run (0 disables)")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		seed        = flag.Int64("seed", 1, "mix/arrival RNG seed (runs are reproducible given a seed)")
		tenantsArg  = flag.String("tenants", "", "tenant mix: comma-separated name:archetype[:weight] (archetypes: steady, bursty, idle); labels sessions and shapes per-tenant load (empty disables)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		keep        = flag.Bool("keep-sessions", false, "leave sessions resident after the run")
		apiKey      = flag.String("api-key", "", "bearer token for daemons/routers running with -api-key (empty sends none)")

		resident       = flag.Int("resident", 0, "density mode: create this many resident sessions, then open-loop tick a rotating working set (0 = classic mix mode)")
		createParallel = flag.Int("create-parallel", 64, "density mode: concurrent session creations")
		workingSet     = flag.Int("working-set", 1024, "density mode: sessions in the actively-ticked window")
		rotateEvery    = flag.Duration("rotate-every", 5*time.Second, "density mode: slide the working-set window this often")
		residentCores  = flag.Int("resident-cores", 8, "density mode: bundle size per resident session")
		residentMech   = flag.String("resident-mech", "equalshare", "density mode: mechanism per resident session")
	)
	flag.Parse()

	if *cheapFrac < 0 || *cheapFrac > 1 {
		fatal("cheap-frac must be in [0,1]")
	}
	if *mode != "closed" && *mode != "open" {
		fatal("mode must be closed or open")
	}
	if *arrival != "poisson" && *arrival != "uniform" {
		fatal("arrival must be poisson or uniform")
	}
	tenants, err := parseTenantMix(*tenantsArg)
	if err != nil {
		fatal("%v", err)
	}

	// One pooled transport for everything: a 100k-session create burst at
	// -create-parallel 64 would otherwise open (and TIME_WAIT) a socket per
	// request. Pool depth tracks the create parallelism, which bounds the
	// harness's own concurrency in both modes.
	poolDepth := *createParallel
	if *concurrency > poolDepth {
		poolDepth = *concurrency
	}
	transport := &http.Transport{
		MaxIdleConns:        poolDepth * 2,
		MaxIdleConnsPerHost: poolDepth * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	opts := []client.Option{
		client.WithHTTPClient(&http.Client{Transport: transport}),
		client.WithTimeout(*timeout),
	}
	if *apiKey != "" {
		opts = append(opts, client.WithAPIKey(*apiKey))
	}
	cl := client.New(*target, opts...)
	rng := rand.New(rand.NewSource(*seed))

	if *resident > 0 {
		runResident(cl, residentConfig{
			target:     *target,
			label:      *label,
			resident:   *resident,
			parallel:   *createParallel,
			workingSet: *workingSet,
			rotate:     *rotateEvery,
			cores:      *residentCores,
			mech:       *residentMech,
			rate:       *rate,
			duration:   *duration,
			seed:       *seed,
			keep:       *keep,
			out:        *out,
		})
		return
	}

	f := false
	tr := true
	cheap := &class{name: "cheap", spec: server.SessionSpec{
		Workload:  server.WorkloadSpec{Category: "CPBN", Cores: *cheapCores},
		Mechanism: *cheapMech,
	}}
	expensive := &class{name: "expensive", spec: server.SessionSpec{
		Workload:  server.WorkloadSpec{Category: "CPBN", Cores: *expCores},
		Mechanism: *expMech,
	}}
	if *expWarm {
		expensive.spec.WarmStart = &tr
	} else {
		expensive.spec.WarmStart = &f
	}
	if *expSim {
		expensive.spec.Mode = "sim"
		expensive.spec.Sim = &server.SimSpec{ReallocEvery: 1}
	}

	// Build the deterministic class assignment, then create the sessions.
	nCheap := int(math.Round(*cheapFrac * float64(*sessions)))
	assignment := make([]*class, 0, *sessions)
	for i := 0; i < *sessions; i++ {
		if i < nCheap {
			assignment = append(assignment, cheap)
		} else {
			assignment = append(assignment, expensive)
		}
	}
	rng.Shuffle(len(assignment), func(i, j int) {
		assignment[i], assignment[j] = assignment[j], assignment[i]
	})
	// Sessions are spread across the tenant mix by weight; the label rides
	// the spec, so placement is assertable from create/list responses.
	tenantOf := map[string]tenantMix{}
	var weightTotal float64
	for _, tm := range tenants {
		weightTotal += tm.weight
	}
	pickTenant := func() tenantMix {
		x := rng.Float64() * weightTotal
		for _, tm := range tenants {
			if x -= tm.weight; x < 0 {
				return tm
			}
		}
		return tenants[len(tenants)-1]
	}
	createCtx, cancelCreate := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCreate()
	for i, c := range assignment {
		spec := c.spec
		spec.ID = fmt.Sprintf("lg-%s-%04d", c.name[:1], i)
		spec.Workload.Seed = uint64(*seed)*1_000_003 + uint64(i)
		if len(tenants) > 0 {
			tm := pickTenant()
			spec.Tenant = tm.name
			tenantOf[spec.ID] = tm
		}
		view, err := createWithRetry(createCtx, cl, spec)
		if err != nil {
			fatal("create %s: %v", spec.ID, err)
		}
		if spec.Tenant != "" && view.Tenant != spec.Tenant {
			fatal("create %s: placed under tenant %q, want %q", spec.ID, view.Tenant, spec.Tenant)
		}
		c.ids = append(c.ids, view.ID)
	}
	// Prime each session with a few sequential, unmeasured epochs. This
	// seeds the daemon's per-session cost EWMAs with real measurements
	// (an unmeasured session is admitted on its analytic prior, which for
	// big bundles is deliberately pessimistic) and keeps cold-start
	// transients out of the measured window.
	if *prime > 0 {
		for _, c := range []*class{cheap, expensive} {
			for _, id := range c.ids {
				for i := 0; i < *prime; i++ {
					if _, err := cl.StepEpoch(createCtx, id); err != nil && !client.IsBusy(err) {
						fatal("prime %s: %v", id, err)
					}
				}
			}
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d sessions created (%d cheap, %d expensive), running %s %s for %s\n",
		*sessions, len(cheap.ids), len(expensive.ids), *mode, "loop", *duration)

	// The measured run. pick() chooses a session uniformly from the mix so
	// offered load per class is proportional to the session mix.
	all := make([]struct {
		id string
		c  *class
	}, 0, *sessions)
	stats := map[*class]*classStats{cheap: {}, expensive: {}}
	for _, c := range []*class{cheap, expensive} {
		for _, id := range c.ids {
			all = append(all, struct {
				id string
				c  *class
			}{id, c})
		}
	}

	tstats := map[string]*classStats{}
	for _, tm := range tenants {
		tstats[tm.name] = &classStats{}
	}

	runCtx, cancelRun := context.WithTimeout(context.Background(), *duration)
	defer cancelRun()
	start := time.Now()
	var wg sync.WaitGroup
	hit := func(id string, c *class) {
		t0 := time.Now()
		var err error
		if *epochBatch == 1 {
			_, err = cl.StepEpoch(runCtx, id)
		} else {
			_, err = cl.StepEpochs(runCtx, id, *epochBatch)
		}
		if runCtx.Err() != nil && err != nil {
			return // shutdown race, not a measurement
		}
		d := time.Since(t0)
		stats[c].record(d, err)
		if ts := tstats[tenantOf[id].name]; ts != nil {
			ts.record(d, err)
		}
	}
	// offering reports whether the picked session's tenant is in an active
	// phase of its archetype; without a tenant mix everything always offers.
	offering := func(id string) bool {
		if len(tenants) == 0 {
			return true
		}
		return tenantOf[id].eligible(time.Since(start))
	}

	switch *mode {
	case "closed":
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			// Per-worker RNG: no lock contention on the shared source.
			wrng := rand.New(rand.NewSource(*seed ^ int64(w*7919+1)))
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					pick := all[wrng.Intn(len(all))]
					if !offering(pick.id) {
						// Off-phase tenant: don't burn the worker slot on a
						// spin; everyone may be off-phase at once.
						time.Sleep(5 * time.Millisecond)
						continue
					}
					hit(pick.id, pick.c)
				}
			}()
		}
	case "open":
		wg.Add(1)
		go func() {
			defer wg.Done()
			mean := time.Duration(float64(time.Second) / *rate)
			for runCtx.Err() == nil {
				gap := mean
				if *arrival == "poisson" {
					gap = time.Duration(rng.ExpFloat64() * float64(mean))
				}
				select {
				case <-runCtx.Done():
					return
				case <-time.After(gap):
				}
				pick := all[rng.Intn(len(all))]
				if !offering(pick.id) {
					continue // the arrival fires, but this tenant is off-phase
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					hit(pick.id, pick.c)
				}()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if !*keep {
		cleanCtx, cancelClean := context.WithTimeout(context.Background(), time.Minute)
		defer cancelClean()
		for _, e := range all {
			_ = cl.DeleteSession(cleanCtx, e.id)
		}
	}

	rep := Report{
		Label:       *label,
		Target:      *target,
		Mode:        *mode,
		Concurrency: *concurrency,
		DurationSec: elapsed.Seconds(),
		Sessions:    *sessions,
		Classes:     map[string]ClassReport{},
	}
	if *mode == "open" {
		rep.Arrival = *arrival
		rep.RatePerSec = *rate
	}
	for _, c := range []*class{cheap, expensive} {
		cr := reportFor(stats[c], len(c.ids), elapsed)
		rep.Classes[c.name] = cr
		rep.Requests += cr.Requests
		rep.OK += cr.OK
		rep.Busy429 += cr.Busy429
		rep.Errors += cr.Errors
	}
	if len(tenants) > 0 {
		perTenant := map[string]int{}
		for _, tm := range tenantOf {
			perTenant[tm.name]++
		}
		rep.Tenants = map[string]ClassReport{}
		for _, tm := range tenants {
			rep.Tenants[tm.name] = reportFor(tstats[tm.name], perTenant[tm.name], elapsed)
		}
	}
	rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	if rep.Requests > 0 {
		rep.Rate429 = float64(rep.Busy429) / float64(rep.Requests)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encode report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
}

// reportFor folds one stats bucket (a traffic class or a tenant) into its
// report slice.
func reportFor(cs *classStats, sessions int, elapsed time.Duration) ClassReport {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sort.Float64s(cs.lat)
	cr := ClassReport{
		Sessions:   sessions,
		Requests:   cs.total.Load(),
		OK:         cs.ok.Load(),
		Busy429:    cs.busy.Load(),
		Errors:     cs.errs.Load(),
		P50Ms:      percentile(cs.lat, 0.50) * 1000,
		P99Ms:      percentile(cs.lat, 0.99) * 1000,
		P999Ms:     percentile(cs.lat, 0.999) * 1000,
		Throughput: float64(cs.ok.Load()) / elapsed.Seconds(),
	}
	if n := len(cs.lat); n > 0 {
		sum := 0.0
		for _, v := range cs.lat {
			sum += v
		}
		cr.MeanMs = sum / float64(n) * 1000
	}
	if cr.Requests > 0 {
		cr.Rate429 = float64(cr.Busy429) / float64(cr.Requests)
	}
	return cr
}

// residentConfig parameterises one density-mode run.
type residentConfig struct {
	target     string
	label      string
	resident   int
	parallel   int
	workingSet int
	rotate     time.Duration
	cores      int
	mech       string
	rate       float64
	duration   time.Duration
	seed       int64
	keep       bool
	out        string
}

// runResident is density mode: flood-create rc.resident sessions with
// bounded parallelism, then tick an open loop over a working-set window
// that slides through the population every rc.rotate — the rest of the
// residents idle (and hibernate, on a -park-after daemon). Any create or
// tick error beyond 429 backpressure is fatal to the run's claim, so it is
// reported and exits nonzero.
func runResident(cl *client.Client, rc residentConfig) {
	if rc.workingSet > rc.resident {
		rc.workingSet = rc.resident
	}
	ids := make([]string, rc.resident)
	createCtx, cancelCreate := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancelCreate()

	fmt.Fprintf(os.Stderr, "loadgen: creating %d resident sessions (%d-way)\n", rc.resident, rc.parallel)
	createStart := time.Now()
	var createErrs atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, rc.parallel)
	for i := 0; i < rc.resident; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			spec := server.SessionSpec{
				ID:        fmt.Sprintf("dn-%06d", i),
				Workload:  server.WorkloadSpec{Category: "CPBN", Cores: rc.cores, Seed: uint64(rc.seed)*1_000_003 + uint64(i)},
				Mechanism: rc.mech,
			}
			view, err := createWithRetry(createCtx, cl, spec)
			if err != nil {
				if createErrs.Add(1) <= 5 {
					fmt.Fprintf(os.Stderr, "loadgen: create %s: %v\n", spec.ID, err)
				}
				return
			}
			ids[i] = view.ID
		}(i)
	}
	wg.Wait()
	createElapsed := time.Since(createStart)
	if n := createErrs.Load(); n > 0 {
		fatal("%d/%d creates failed", n, rc.resident)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d residents in %s (%.0f/s), ticking %d-session window at %.0f/s for %s\n",
		rc.resident, createElapsed.Round(time.Millisecond), float64(rc.resident)/createElapsed.Seconds(),
		rc.workingSet, rc.rate, rc.duration)

	// Open-loop ticking over the sliding window. The window start advances
	// by one window every rc.rotate, wrapping over the population, so a long
	// run touches everyone while the instantaneous resident:active ratio
	// stays resident/workingSet.
	stats := &classStats{}
	runCtx, cancelRun := context.WithTimeout(context.Background(), rc.duration)
	defer cancelRun()
	rng := rand.New(rand.NewSource(rc.seed))
	start := time.Now()
	var tickWG sync.WaitGroup
	mean := time.Duration(float64(time.Second) / rc.rate)
	for runCtx.Err() == nil {
		gap := time.Duration(rng.ExpFloat64() * float64(mean))
		select {
		case <-runCtx.Done():
		case <-time.After(gap):
			window := int(time.Since(start)/rc.rotate) * rc.workingSet
			id := ids[(window+rng.Intn(rc.workingSet))%rc.resident]
			tickWG.Add(1)
			go func() {
				defer tickWG.Done()
				t0 := time.Now()
				_, err := cl.StepEpoch(runCtx, id)
				if runCtx.Err() != nil && err != nil {
					return // shutdown race, not a measurement
				}
				stats.record(time.Since(t0), err)
			}()
		}
	}
	tickWG.Wait()
	elapsed := time.Since(start)

	// A timed scrape is part of the density claim: /metrics must stay cheap
	// with the full population resident.
	scrapeStart := time.Now()
	body, err := cl.Metrics(context.Background())
	if err != nil {
		fatal("scrape /metrics: %v", err)
	}
	scrape := time.Since(scrapeStart)

	rep := Report{
		Label:       rc.label,
		Target:      rc.target,
		Mode:        "resident",
		RatePerSec:  rc.rate,
		DurationSec: elapsed.Seconds(),
		Sessions:    rc.resident,
		Resident:    rc.resident,
		WorkingSet:  rc.workingSet,
		CreateSec:    createElapsed.Seconds(),
		CreatePerSec: float64(rc.resident) / createElapsed.Seconds(),
		ScrapeMs:     scrape.Seconds() * 1000,
		ScrapeBytes: int64(len(body)),
		Classes:     map[string]ClassReport{},
	}
	cr := reportFor(stats, rc.resident, elapsed)
	rep.Classes["resident"] = cr
	rep.Requests, rep.OK, rep.Busy429, rep.Errors = cr.Requests, cr.OK, cr.Busy429, cr.Errors
	rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	if rep.Requests > 0 {
		rep.Rate429 = float64(rep.Busy429) / float64(rep.Requests)
	}

	if !rc.keep {
		cleanCtx, cancelClean := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancelClean()
		for i := 0; i < rc.resident; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(id string) {
				defer wg.Done()
				defer func() { <-sem }()
				_ = cl.DeleteSession(cleanCtx, id)
			}(ids[i])
		}
		wg.Wait()
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("encode report: %v", err)
	}
	enc = append(enc, '\n')
	if rc.out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(rc.out, enc, 0o644); err != nil {
		fatal("write %s: %v", rc.out, err)
	}
	if rep.Errors > 0 {
		fatal("%d tick errors during the measured run", rep.Errors)
	}
}

// createWithRetry rides out transient 429s during the setup burst: session
// creation also passes admission, and a saturated daemon may push back.
func createWithRetry(ctx context.Context, cl *client.Client, spec server.SessionSpec) (server.SessionView, error) {
	for {
		view, err := cl.CreateSession(ctx, spec)
		if err == nil || !client.IsBusy(err) {
			return view, err
		}
		wait := 100 * time.Millisecond
		if ae, ok := err.(*client.APIError); ok && ae.RetryAfter > 0 {
			wait = ae.RetryAfter
		}
		select {
		case <-ctx.Done():
			return server.SessionView{}, ctx.Err()
		case <-time.After(wait):
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rebudget-loadgen: "+format+"\n", args...)
	os.Exit(1)
}
