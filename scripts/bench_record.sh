#!/bin/sh
# bench_record.sh — run the key benchmarks and record them as a dated JSON
# snapshot (BENCH_<yyyymmdd>.json) so perf trajectories across changes can
# be diffed without keeping raw `go test -bench` logs around.
#
# Usage: scripts/bench_record.sh [benchtime]   (default 10x)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="BENCH_$(date +%Y%m%d).json"
KEY='^(BenchmarkMarketEquilibrium8|BenchmarkMarketEquilibrium64|BenchmarkMarketEquilibrium64Serial|BenchmarkReBudget64|BenchmarkFig5Simulation|BenchmarkCacheAccess|BenchmarkChipEpoch8|BenchmarkChipEpoch64|BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkServeEpoch|BenchmarkTenantRebalance|BenchmarkTenantFrontier)$'

SRVKEY='^(BenchmarkStoreParallelGet|BenchmarkStoreParallelAdd|BenchmarkMetricsRender50k|BenchmarkResidentSessionBytes)$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$KEY" -benchtime "$BENCHTIME" . | tee "$RAW"
# The density benches live in the server package. BenchmarkResidentSessionBytes
# is a census, not a loop — one iteration is the measurement.
go test -run '^$' -bench "$SRVKEY" -benchtime 1x ./internal/server | tee -a "$RAW"

# Parse "BenchmarkName-N  iters  123 ns/op  45 B/op  6 allocs/op  7.0 rounds/op"
# into one JSON object per benchmark.
awk -v date="$(date +%Y-%m-%d)" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchmarks\": [\n", date }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; rounds = ""; bsession = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "rounds/op") rounds = $i
        if ($(i+1) == "bytes/session") bsession = $i
    }
    if (count++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iters\": %s", name, $2
    if (ns != "") printf ", \"ns_per_op\": %s", ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    if (rounds != "") printf ", \"rounds_per_op\": %s", rounds
    if (bsession != "") printf ", \"bytes_per_session\": %s", bsession
    printf "}"
}
END { print "\n  ]" }
' "$RAW" > "$OUT"

# Fold the newest loadgen A/B reports (written by scripts/load_ab.sh) into
# the snapshot, so serving-tier latency trajectories ride alongside the
# kernel numbers. Skipped when no A/B has been recorded.
# Fold the newest density run (written by scripts/density_ab.sh) into the
# snapshot the same way.
if [ -f .bench/density.json ]; then
    {
        printf ',\n  "density": '
        sed 's/^/  /;1s/^ *//' .bench/density.json | sed '${/^ *$/d}'
    } >> "$OUT"
    echo "folded density report into $OUT"
fi

if [ -f .bench/loadgen_cost.json ] && [ -f .bench/loadgen_count.json ]; then
    {
        printf ',\n  "loadgen": {\n    "cost": '
        sed 's/^/    /;1s/^ *//' .bench/loadgen_cost.json | sed '${/^ *$/d}'
        printf ',\n    "count": '
        sed 's/^/    /;1s/^ *//' .bench/loadgen_count.json | sed '${/^ *$/d}'
        printf '  }\n'
    } >> "$OUT"
    echo "folded loadgen A/B reports into $OUT"
fi
printf '}\n' >> "$OUT"

echo "wrote $OUT"
