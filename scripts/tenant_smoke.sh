#!/bin/sh
# tenant_smoke.sh — end-to-end smoke test of the tenant budget economy,
# run by `make tenant-smoke` (and `make ci`).
#
# Boots one rebudgetd with tenancy armed (two tenants, "lend" and
# "borrow", splitting a 4-unit cost budget 50/50 with 100ms rebalance
# epochs) and drives a lend-then-reclaim cycle through live traffic:
#
#   phase 1  only "borrow" offers load, well past its deserved half —
#            the idle "lend" tenant's parked slice must be lent out
#            (rebudgetd_tenant_lent_cost{tenant="lend"} rises and
#            "borrow" runs over quota);
#   phase 2  both tenants offer saturating load — "lend"'s demand has
#            returned, so bounded reclaim must cut "borrow" back and
#            restore "lend" to ~its deserved share within a few epochs
#            (granted ≈ deserved while both are demanding, and
#            rebudgetd_tenant_reclaimed_cost_total has moved).
#
# rebudget-loadgen itself asserts per-tenant placement (every created
# session's view must echo the tenant label) and each phase's report
# carries a per-tenant breakdown. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID=""
LPID=""

cleanup() {
    for p in "$LPID" "$PID"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null
            wait "$p" 2>/dev/null
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "tenant-smoke: building rebudgetd, rebudget-loadgen and rebudget-smoke"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-loadgen" ./cmd/rebudget-loadgen || exit 1
go build -o "$TMP/rebudget-smoke" ./cmd/rebudget-smoke || exit 1

# wait_addr LOGFILE: poll the daemon log (PID already set by the caller)
# and echo the bound address once the daemon reports it.
wait_addr() {
    _log=$1
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*rebudgetd listening.*addr=//p' "$_log" | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$PID" 2>/dev/null; then
            echo "tenant-smoke: daemon died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "tenant-smoke: daemon never reported its address:" >&2
    cat "$_log" >&2
    return 1
}

# await_check DESC CHECKS TRIES: poll /metrics every 0.3s until the
# rebudget-smoke assertions hold, or fail after TRIES attempts printing
# the tenant gauge lines for the post-mortem.
await_check() {
    _desc=$1
    _checks=$2
    _tries=$3
    _i=0
    while [ $_i -lt "$_tries" ]; do
        if "$TMP/rebudget-smoke" -base "http://$ADDR" -metrics-only \
            -checks "$_checks" >/dev/null 2>&1; then
            echo "tenant-smoke: $_desc"
            return 0
        fi
        sleep 0.3
        _i=$((_i + 1))
    done
    echo "tenant-smoke: timed out waiting for: $_desc" >&2
    echo "tenant-smoke: wanted: $_checks" >&2
    curl -s "http://$ADDR/metrics" 2>/dev/null | grep '^rebudgetd_tenant' >&2
    return 1
}

"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 0 \
    -tenants lend,borrow -tenant-epoch 100ms -cost-capacity 4 \
    2> "$TMP/daemon.log" &
PID=$!
ADDR=$(wait_addr "$TMP/daemon.log") || exit 1
echo "tenant-smoke: daemon up at $ADDR (pid $PID), tenancy armed"

# The tree starts parked: each tenant holds its deserved half of the
# 4-unit budget before any traffic.
if ! "$TMP/rebudget-smoke" -base "http://$ADDR" -metrics-only -checks \
    'rebudgetd_tenant_deserved_cost{tenant="lend"}>=1.9,rebudgetd_tenant_deserved_cost{tenant="borrow"}>=1.9,rebudgetd_tenant_granted_cost{tenant="lend"}>=1.9'; then
    echo "tenant-smoke: initial parked split missing; daemon log:"
    cat "$TMP/daemon.log"
    exit 1
fi
echo "tenant-smoke: parked 50/50 split in place"

# Phase 1: saturate "borrow" while "lend" stays idle. 24 concurrent
# market sessions want far more than borrow's 2-unit slice, so
# the rebalancer must lend lend's idle headroom across.
echo "tenant-smoke: phase 1 — borrow saturates, lend idle"
"$TMP/rebudget-loadgen" -target "http://$ADDR" -label tenant-lend-phase \
    -sessions 24 -cheap-frac 1 -cheap-cores 32 -cheap-mech equalbudget \
    -concurrency 24 -duration 10s -prime 0 -tenants borrow:steady \
    -out "$TMP/phase1.json" 2> "$TMP/loadgen1.log" &
LPID=$!

await_check "lending observed (lend's slice moved to borrow)" \
    'rebudgetd_tenant_lent_cost{tenant="lend"}>=0.5,rebudgetd_tenant_borrowed_cost{tenant="borrow"}>=0.5,rebudgetd_tenant_sessions{tenant="borrow"}>=1' \
    40 || { cat "$TMP/loadgen1.log" >&2; exit 1; }

if ! wait "$LPID"; then
    echo "tenant-smoke: phase 1 loadgen failed:"
    cat "$TMP/loadgen1.log"
    exit 1
fi
LPID=""

# Phase 2: lend's demand returns alongside borrow's. Bounded reclaim must
# cut borrow back so lend holds ~its deserved share while both demand.
echo "tenant-smoke: phase 2 — lend's demand returns, reclaim"
"$TMP/rebudget-loadgen" -target "http://$ADDR" -label tenant-reclaim-phase \
    -sessions 24 -cheap-frac 1 -cheap-cores 32 -cheap-mech equalbudget \
    -concurrency 24 -duration 12s -prime 0 \
    -tenants lend:steady,borrow:steady \
    -out "$TMP/phase2.json" 2> "$TMP/loadgen2.log" &
LPID=$!

await_check "reclaim restored lend to its deserved share under live load" \
    'rebudgetd_tenant_demand_cost{tenant="lend"}>=0.8,rebudgetd_tenant_granted_cost{tenant="lend"}>=1.75,rebudgetd_tenant_reclaimed_cost_total{tenant="borrow"}>=0.1,rebudgetd_tenant_rebalance_epochs_total>=10' \
    40 || { cat "$TMP/loadgen2.log" >&2; exit 1; }

if ! wait "$LPID"; then
    echo "tenant-smoke: phase 2 loadgen failed:"
    cat "$TMP/loadgen2.log"
    exit 1
fi
LPID=""

# Both phases must have admitted real per-tenant traffic (the loadgen
# report carries a per-tenant breakdown; "ok" lines appear per tenant).
for f in phase1 phase2; do
    if ! grep -q '"tenants"' "$TMP/$f.json"; then
        echo "tenant-smoke: $f report missing per-tenant section"
        cat "$TMP/$f.json"
        exit 1
    fi
done

# SIGTERM must drain cleanly with tenancy armed.
kill -TERM "$PID"
_i=0
while kill -0 "$PID" 2>/dev/null; do
    if [ $_i -ge 150 ]; then
        echo "tenant-smoke: daemon did not drain within 15s"
        exit 1
    fi
    sleep 0.1
    _i=$((_i + 1))
done
wait "$PID" 2>/dev/null
PID=""
echo "tenant-smoke: lend-then-reclaim cycle observed; PASS"
exit 0
