#!/bin/sh
# churn_smoke.sh — elastic-membership smoke of the serving tier, run by
# `make churn-smoke` (and `make ci`).
#
# Boots a rebudget-snapstore, two rebudgetd shards snapshotting to it, and
# two rebudget-router replicas (one gossiping to the other) with the admin
# API armed. Places sessions, starts a background rebudget-loadgen, then
# churns the fleet under that live traffic: grow 2 -> 4 shards through
# POST /admin/shards, wait for the migration queue to drain, shrink back
# 4 -> 2 through DELETE /admin/shards, wait for the retired shards to
# drain. Asserts zero lost sessions (every pre-churn session still steps
# with its progress intact), zero loadgen errors across the whole churn,
# membership-epoch/migration/gossip counters on the routers, and warm
# restores on the snapstore and shards. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PIDS=""
TOKEN=${CHURN_TOKEN:-churn-smoke-token}
DURATION=${CHURN_DURATION:-16s}

cleanup() {
    for p in $PIDS; do
        if kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null
            wait "$p" 2>/dev/null
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "churn-smoke: FAIL: $1" >&2
    shift
    for f in "$@"; do
        echo "---- $f ----" >&2
        cat "$f" >&2
    done
    exit 1
}

echo "churn-smoke: building the tier"
for c in rebudgetd rebudget-router rebudget-snapstore rebudget-smoke rebudget-loadgen; do
    go build -o "$TMP/$c" ./cmd/$c || exit 1
done

# wait_addr LOGFILE PID NAME: echo the addr= the process logged on startup.
wait_addr() {
    _log=$1
    _pid=$2
    _name=$3
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*listening.*addr=//p' "$_log" | sed 's/ .*//' | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "churn-smoke: $_name died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "churn-smoke: $_name never reported its address:" >&2
    cat "$_log" >&2
    return 1
}

# admin METHOD PATH [BODY]: authenticated admin call against router 1.
admin() {
    _method=$1
    _path=$2
    _body=${3:-}
    if [ -n "$_body" ]; then
        curl -sf -X "$_method" -H "Authorization: Bearer $TOKEN" \
            -H "Content-Type: application/json" -d "$_body" \
            "http://$RADDR1$_path"
    else
        curl -sf -X "$_method" -H "Authorization: Bearer $TOKEN" \
            "http://$RADDR1$_path"
    fi
}

# wait_quiet: poll /admin/membership until no migration is queued or
# pinned and no retired shard is still draining (40s bound).
wait_quiet() {
    _i=0
    while [ $_i -lt 400 ]; do
        _m=$(admin GET /admin/membership) || fail "membership poll failed" "$TMP/router1.log"
        if echo "$_m" | grep -q '"migrating": *0' && ! echo "$_m" | grep -q '"draining"'; then
            return 0
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    fail "migrations never drained: $_m" "$TMP/router1.log"
}

# --- boot: snapstore, 4 shards (2 in the ring, 2 standing by), 2 routers ---
"$TMP/rebudget-snapstore" -addr 127.0.0.1:0 2> "$TMP/snapstore.log" &
PIDS="$PIDS $!"
SNAPADDR=$(wait_addr "$TMP/snapstore.log" "$!" snapstore) || exit 1

i=1
while [ $i -le 4 ]; do
    "$TMP/rebudgetd" -addr 127.0.0.1:0 -snapshot-url "http://$SNAPADDR" \
        2> "$TMP/shard$i.log" &
    PIDS="$PIDS $!"
    eval "SPID$i=$!"
    _a=$(wait_addr "$TMP/shard$i.log" "$!" "shard $i") || exit 1
    eval "SADDR$i=$_a"
    i=$((i + 1))
done
echo "churn-smoke: snapstore at $SNAPADDR, shards at $SADDR1 $SADDR2 (+$SADDR3 $SADDR4 standing by)"

"$TMP/rebudget-router" -addr 127.0.0.1:0 -probe-interval 200ms \
    -admin-token "$TOKEN" -migration-interval 50ms -migration-budget 8 \
    -backends "http://$SADDR1,http://$SADDR2" 2> "$TMP/router1.log" &
PIDS="$PIDS $!"
RADDR1=$(wait_addr "$TMP/router1.log" "$!" "router 1") || exit 1
"$TMP/rebudget-router" -addr 127.0.0.1:0 -probe-interval 200ms \
    -admin-token "$TOKEN" -gossip-peers "http://$RADDR1" -gossip-interval 300ms \
    -backends "http://$SADDR1,http://$SADDR2" 2> "$TMP/router2.log" &
PIDS="$PIDS $!"
RADDR2=$(wait_addr "$TMP/router2.log" "$!" "router 2") || exit 1
echo "churn-smoke: routers up at $RADDR1 (admin) and $RADDR2 (gossiping to it)"

# --- place a tracked population and snapshot its progress ---
i=1
while [ $i -le 12 ]; do
    "$TMP/rebudget-smoke" -base "http://$RADDR1" -id "churn$i" \
        -epochs 2 -keep -checks none > /dev/null \
        || fail "placing session churn$i" "$TMP/router1.log"
    i=$((i + 1))
done
echo "churn-smoke: 12 tracked sessions placed"

# --- background load through the churn ---
"$TMP/rebudget-loadgen" -target "http://$RADDR1" -mode closed -concurrency 4 \
    -sessions 8 -duration "$DURATION" -label churn -out "$TMP/load.json" \
    > /dev/null 2> "$TMP/loadgen.log" &
LGPID=$!
PIDS="$PIDS $LGPID"

# --- grow 2 -> 4 under that traffic ---
sleep 1
echo "churn-smoke: growing 2 -> 4 shards"
admin POST /admin/shards "{\"shard\":\"http://$SADDR3\"}" > /dev/null \
    || fail "adding shard 3" "$TMP/router1.log"
admin POST /admin/shards "{\"shard\":\"http://$SADDR4\"}" > /dev/null \
    || fail "adding shard 4" "$TMP/router1.log"
wait_quiet
echo "churn-smoke: grown to 4 shards, migrations drained"

# --- shrink 4 -> 2, still under traffic ---
sleep 1
echo "churn-smoke: shrinking 4 -> 2 shards"
admin DELETE "/admin/shards?shard=http://$SADDR4" > /dev/null \
    || fail "removing shard 4" "$TMP/router1.log"
admin DELETE "/admin/shards?shard=http://$SADDR3" > /dev/null \
    || fail "removing shard 3" "$TMP/router1.log"
wait_quiet
echo "churn-smoke: shrunk back to 2 shards, retirees drained"

# --- zero lost sessions: every tracked session resumes with its progress ---
i=1
while [ $i -le 12 ]; do
    "$TMP/rebudget-smoke" -base "http://$RADDR1" -id "churn$i" \
        -resume 2 -epochs 1 -keep -checks none > /dev/null \
        || fail "session churn$i lost in the churn" "$TMP/router1.log" "$TMP/shard1.log" "$TMP/shard2.log"
    i=$((i + 1))
done
echo "churn-smoke: all 12 tracked sessions survived with progress intact"

# --- zero loadgen errors across the whole churn window ---
wait "$LGPID" || fail "loadgen exited non-zero" "$TMP/loadgen.log"
if grep -o '"errors": *[0-9]*' "$TMP/load.json" | grep -vq ': *0$'; then
    fail "loadgen saw transport errors during the churn: $(cat "$TMP/load.json")" "$TMP/loadgen.log"
fi
echo "churn-smoke: loadgen ran error-free through both membership changes"

# --- observability: epochs moved, sessions migrated, gossip converged ---
# Four membership changes (two adds, two removes) on top of epoch 1.
"$TMP/rebudget-smoke" -base "http://$RADDR1" -metrics-only -checks \
    'rebudget_router_membership_epoch>=5,rebudget_router_membership_changes_total>=4,rebudget_router_migrations_total>=1' \
    || fail "router 1 elastic metrics" "$TMP/router1.log"
# Router 2 never took an admin call: everything it knows arrived by gossip.
"$TMP/rebudget-smoke" -base "http://$RADDR2" -metrics-only -checks \
    'rebudget_router_membership_epoch>=5,rebudget_router_gossip_rounds_total>=1' \
    || fail "router 2 did not converge via gossip" "$TMP/router2.log"
# Migration used snapshots as the vehicle: the snapstore served restores.
"$TMP/rebudget-smoke" -base "http://$SNAPADDR" -metrics-only -checks \
    'snapstore_puts_total>=1,snapstore_gets_total>=1,snapstore_corrupt_total>=0' \
    || fail "snapstore counters" "$TMP/snapstore.log"
# And at least one surviving shard performed a checksum-verified restore.
if ! "$TMP/rebudget-smoke" -base "http://$SADDR1" -metrics-only \
    -checks 'rebudgetd_snapshots_total{op="restore"}>=1' > /dev/null 2>&1 \
    && ! "$TMP/rebudget-smoke" -base "http://$SADDR2" -metrics-only \
        -checks 'rebudgetd_snapshots_total{op="restore"}>=1' > /dev/null 2>&1; then
    fail "no surviving shard reports a snapshot restore" "$TMP/shard1.log" "$TMP/shard2.log"
fi

echo "churn-smoke: OK"
exit 0
