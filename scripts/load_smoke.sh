#!/bin/sh
# load_smoke.sh — scaled-down load-harness smoke test, run by
# `make load-smoke` (and `make ci`).
#
# Boots two rebudgetd shards behind a rebudget-router and drives them with
# rebudget-loadgen for LOAD_DURATION (default 15s; with build and session
# setup the whole smoke lands around 30s): a closed-loop 80/20
# cheap/expensive mix at enough concurrency to queue. Asserts the run
# completed with nonzero successful throughput, a bounded 429 rate, and
# that the shards expose the weighted admission gauges
# (rebudgetd_dispatch_*_cost) in /metrics. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID1=""
PID2=""
RPID=""
DURATION="${LOAD_DURATION:-15s}"

cleanup() {
    for p in "$RPID" "$PID1" "$PID2"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null
            wait "$p" 2>/dev/null
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "load-smoke: building rebudgetd, rebudget-router, rebudget-loadgen and rebudget-smoke"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-router" ./cmd/rebudget-router || exit 1
go build -o "$TMP/rebudget-loadgen" ./cmd/rebudget-loadgen || exit 1
go build -o "$TMP/rebudget-smoke" ./cmd/rebudget-smoke || exit 1

# wait_addr LOGFILE PID NAME: echo the addr= the process logged on startup.
wait_addr() {
    _log=$1
    _pid=$2
    _name=$3
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*listening.*addr=//p' "$_log" | sed 's/ .*//' | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "load-smoke: $_name died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "load-smoke: $_name never reported its address:" >&2
    cat "$_log" >&2
    return 1
}

"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 0 2> "$TMP/shard1.log" &
PID1=$!
"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 0 2> "$TMP/shard2.log" &
PID2=$!
ADDR1=$(wait_addr "$TMP/shard1.log" "$PID1" "shard 1") || exit 1
ADDR2=$(wait_addr "$TMP/shard2.log" "$PID2" "shard 2") || exit 1
"$TMP/rebudget-router" -addr 127.0.0.1:0 -probe-interval 200ms \
    -backends "http://$ADDR1,http://$ADDR2" 2> "$TMP/router.log" &
RPID=$!
RADDR=$(wait_addr "$TMP/router.log" "$RPID" "router") || exit 1
echo "load-smoke: tier up (shards $ADDR1, $ADDR2; router $RADDR)"

echo "load-smoke: driving the tier for $DURATION"
if ! "$TMP/rebudget-loadgen" -target "http://$RADDR" -label load-smoke \
    -sessions 20 -cheap-frac 0.8 -concurrency 12 -duration "$DURATION" \
    -out "$TMP/report.json" 2> "$TMP/loadgen.log"; then
    echo "load-smoke: loadgen failed:"
    cat "$TMP/loadgen.log"
    exit 1
fi
cat "$TMP/report.json"

# Top-level fields come before the per-class section, so the first match of
# each key is the run-wide value.
ok=$(grep -m1 '"ok"' "$TMP/report.json" | sed 's/.*: *//; s/[^0-9]//g')
rate429=$(grep -m1 '"rate_429"' "$TMP/report.json" | sed 's/.*: *//; s/[^0-9.]//g')
errors=$(grep -m1 '"errors"' "$TMP/report.json" | sed 's/.*: *//; s/[^0-9]//g')

if [ -z "$ok" ] || [ "$ok" -eq 0 ]; then
    echo "load-smoke: no successful epoch requests; shard 1 log:"
    tail -20 "$TMP/shard1.log"
    exit 1
fi
if [ -n "$errors" ] && [ "$errors" -gt 0 ]; then
    echo "load-smoke: $errors transport/server errors during the run"
    exit 1
fi
# 429s are expected at saturation; an unbounded rate means admission is
# rejecting nearly everything.
bounded=$(awk -v r="${rate429:-0}" 'BEGIN { print (r < 0.75) ? 1 : 0 }')
if [ "$bounded" != "1" ]; then
    echo "load-smoke: 429 rate $rate429 is not bounded (<0.75)"
    exit 1
fi
echo "load-smoke: $ok epochs served, 429 rate ${rate429:-0}"

# The shards must expose the weighted admission gauges.
for ADDR in "$ADDR1" "$ADDR2"; do
    if ! "$TMP/rebudget-smoke" -base "http://$ADDR" -metrics-only -checks \
        'rebudgetd_dispatch_capacity_cost>=1,rebudgetd_dispatch_in_flight_cost>=0,rebudgetd_dispatch_queued_cost>=0'; then
        echo "load-smoke: shard $ADDR missing weighted dispatch gauges"
        exit 1
    fi
done
echo "load-smoke: weighted admission gauges present on both shards; PASS"
exit 0
