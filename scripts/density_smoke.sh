#!/bin/sh
# density_smoke.sh — high-density serving smoke test, run by
# `make density-smoke` (and `make ci`).
#
# Boots one rebudgetd shard tuned for density (auto lock striping, 2s
# hibernation deadline, API key armed) and drives it with the loadgen's
# -resident mode at 10k sessions. Asserts:
#   - the create flood finishes inside a bound (default 120s) with zero
#     failures,
#   - the measured tick window ends with zero errors,
#   - a full-population /metrics scrape stays under 250ms and carries no
#     per-session-id series,
#   - after the working set goes quiet, the hibernation sweep parks the
#     population (rebudgetd_sessions_parked reported and large).
#
# Size overrides for slower machines: DENSITY_RESIDENT=2000 make density-smoke
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID=""
RESIDENT="${DENSITY_RESIDENT:-10000}"
CREATE_BOUND_S="${DENSITY_CREATE_BOUND_S:-120}"
KEY=density-smoke-key

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null
        wait "$PID" 2>/dev/null
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "density-smoke: building rebudgetd and rebudget-loadgen"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/loadgen" ./cmd/rebudget-loadgen || exit 1

# Capacity is per-segment under striping, so give the store headroom over
# the resident target (see internal/server/store.go).
"$TMP/rebudgetd" -addr 127.0.0.1:0 \
    -max-sessions $((RESIDENT + RESIDENT / 4)) \
    -idle-ttl 0 -park-after 2s -api-key "$KEY" \
    2> "$TMP/daemon.log" &
PID=$!

i=0
ADDR=""
while [ $i -lt 50 ]; do
    ADDR=$(sed -n 's/.*rebudgetd listening.*addr=//p' "$TMP/daemon.log" | head -1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "density-smoke: daemon died before listening:"; cat "$TMP/daemon.log"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "density-smoke: daemon never listened"; exit 1; }
echo "density-smoke: daemon up at $ADDR, creating $RESIDENT residents"

if ! "$TMP/loadgen" -target "http://$ADDR" -api-key "$KEY" \
    -resident "$RESIDENT" -working-set 256 -rate 200 -duration 5s \
    -keep-sessions -out "$TMP/report.json"; then
    echo "density-smoke: loadgen run failed; daemon log tail:"
    tail -20 "$TMP/daemon.log"
    exit 1
fi

get() { tr ',' '\n' < "$TMP/report.json" | sed -n "s/.*\"$1\": *//p" | head -1; }

CREATE=$(get create_sec)
ERRORS=$(get errors)
SCRAPE=$(get scrape_ms)
echo "density-smoke: create_sec=$CREATE errors=$ERRORS scrape_ms=$SCRAPE"

awk -v c="$CREATE" -v bound="$CREATE_BOUND_S" 'BEGIN { exit !(c > 0 && c < bound) }' || {
    echo "density-smoke: create flood took ${CREATE}s (bound ${CREATE_BOUND_S}s)"; exit 1; }
[ "$ERRORS" = "0" ] || { echo "density-smoke: $ERRORS tick errors"; exit 1; }
awk -v s="$SCRAPE" 'BEGIN { exit !(s > 0 && s < 250) }' || {
    echo "density-smoke: full-population scrape took ${SCRAPE}ms (bound 250ms)"; exit 1; }

# The default exposition must stay bounded: no per-session-id series even
# with the full population resident.
curl -sf "http://$ADDR/metrics" > "$TMP/metrics.txt" || { echo "density-smoke: scrape failed"; exit 1; }
if grep -q 'id="' "$TMP/metrics.txt"; then
    echo "density-smoke: default /metrics leaks per-session-id series:"
    grep 'id="' "$TMP/metrics.txt" | head -3
    exit 1
fi

# Let the population go idle past -park-after (2s) plus a janitor period
# (1s), then the parked gauge must cover nearly everyone.
echo "density-smoke: waiting for the hibernation sweep"
PARKED=0
i=0
while [ $i -lt 30 ]; do
    sleep 1
    PARKED=$(curl -sf "http://$ADDR/metrics" | awk '/^rebudgetd_sessions_parked / { print $2; exit }')
    [ -n "$PARKED" ] || PARKED=0
    if awk -v p="$PARKED" -v r="$RESIDENT" 'BEGIN { exit !(p >= r * 0.95) }'; then
        break
    fi
    i=$((i + 1))
done
awk -v p="$PARKED" -v r="$RESIDENT" 'BEGIN { exit !(p >= r * 0.95) }' || {
    echo "density-smoke: only $PARKED of $RESIDENT sessions parked"; exit 1; }
echo "density-smoke: $PARKED/$RESIDENT sessions hibernating"

# A parked resident must still wake on touch, through auth.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H "Authorization: Bearer $KEY" "http://$ADDR/v1/sessions/dn-000000/epoch")
[ "$CODE" = "200" ] || { echo "density-smoke: wake-on-touch returned $CODE"; exit 1; }

echo "density-smoke: PASS ($RESIDENT residents, scrape ${SCRAPE}ms, parked $PARKED)"
exit 0
