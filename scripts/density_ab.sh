#!/bin/sh
# density_ab.sh — the 100k-resident density run behind the high-density
# serving claim: a 4-shard rebudgetd tier behind rebudget-router absorbs
# DENSITY_RESIDENT (default 100000) resident sessions with zero errors and
# bounded 429s, keeps open-loop tick latency sane while most of the
# population hibernates, and answers a full-population /metrics scrape
# quickly. The loadgen report lands in .bench/density.json, plus the
# shards' post-run parked counts and peak RSS, where
# scripts/bench_record.sh folds it into the dated BENCH_*.json.
#
# This is a measurement run, not a CI gate — it takes minutes and real
# memory. The CI-sized version is scripts/density_smoke.sh.
#
# Usage: scripts/density_ab.sh [duration]      (default 60s)
#   DENSITY_RESIDENT=100000  population     (default 100000)
#   DENSITY_RATE=500         tick arrivals/sec
set -u

cd "$(dirname "$0")/.."
DURATION="${1:-60s}"
RESIDENT="${DENSITY_RESIDENT:-100000}"
RATE="${DENSITY_RATE:-500}"
SHARDS=4
KEY=density-ab-key
TMP=$(mktemp -d)
PIDS=""
mkdir -p .bench

cleanup() {
    for p in $PIDS; do
        kill -9 "$p" 2>/dev/null
        wait "$p" 2>/dev/null
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "density-ab: building rebudgetd, rebudget-router and rebudget-loadgen"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/router" ./cmd/rebudget-router || exit 1
go build -o "$TMP/loadgen" ./cmd/rebudget-loadgen || exit 1

wait_addr() {
    _log=$1
    _pid=$2
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n 's/.*listening.*addr=//p' "$_log" | sed 's/ .*//' | head -1)
        if [ -n "$_addr" ]; then echo "$_addr"; return 0; fi
        kill -0 "$_pid" 2>/dev/null || { cat "$_log" >&2; return 1; }
        sleep 0.1
        _i=$((_i + 1))
    done
    cat "$_log" >&2
    return 1
}

# Per-shard capacity: an even split plus headroom for ring imbalance and
# the store's per-segment eviction (see internal/server/store.go).
PER_SHARD=$((RESIDENT / SHARDS + RESIDENT / SHARDS / 2))
BASES=""
SHARD_PIDS=""
i=0
while [ $i -lt $SHARDS ]; do
    "$TMP/rebudgetd" -addr 127.0.0.1:0 \
        -max-sessions "$PER_SHARD" -idle-ttl 0 -park-after 5s -api-key "$KEY" \
        2> "$TMP/shard$i.log" &
    p=$!
    PIDS="$PIDS $p"
    SHARD_PIDS="$SHARD_PIDS $p"
    a=$(wait_addr "$TMP/shard$i.log" "$p") || exit 1
    BASES="$BASES${BASES:+,}http://$a"
    i=$((i + 1))
done
echo "density-ab: $SHARDS shards up: $BASES"

"$TMP/router" -addr 127.0.0.1:0 -backends "$BASES" -backend-api-key "$KEY" \
    2> "$TMP/router.log" &
RPID=$!
PIDS="$PIDS $RPID"
RADDR=$(wait_addr "$TMP/router.log" "$RPID") || exit 1
echo "density-ab: router up at $RADDR, creating $RESIDENT residents"

if ! "$TMP/loadgen" -target "http://$RADDR" \
    -resident "$RESIDENT" -create-parallel 128 -working-set 2048 \
    -rate "$RATE" -duration "$DURATION" -keep-sessions \
    -out .bench/density.json; then
    echo "density-ab: loadgen run failed; router log tail:"
    tail -20 "$TMP/router.log"
    exit 1
fi

# Post-run shard census: resident/parked populations and RSS per shard.
sleep 8   # let the park sweep catch the now-idle working set
TOT_LIVE=0
TOT_PARKED=0
TOT_RSS_KB=0
i=0
for p in $SHARD_PIDS; do
    a=$(sed -n 's/.*listening.*addr=//p' "$TMP/shard$i.log" | sed 's/ .*//' | head -1)
    live=$(curl -sf "http://$a/metrics" | awk '/^rebudgetd_sessions_live / { print int($2); exit }')
    parked=$(curl -sf "http://$a/metrics" | awk '/^rebudgetd_sessions_parked / { print int($2); exit }')
    rss=$(awk '/^VmRSS:/ { print $2 }' "/proc/$p/status" 2>/dev/null || echo 0)
    echo "density-ab: shard$i live=$live parked=$parked rss=${rss}kB"
    TOT_LIVE=$((TOT_LIVE + live))
    TOT_PARKED=$((TOT_PARKED + parked))
    TOT_RSS_KB=$((TOT_RSS_KB + rss))
    i=$((i + 1))
done
echo "density-ab: total live=$TOT_LIVE parked=$TOT_PARKED rss=${TOT_RSS_KB}kB"

# Append the shard census to the loadgen report so bench_record.sh folds
# one self-contained object into the snapshot.
sed '$d' .bench/density.json > "$TMP/density.json"
{
    cat "$TMP/density.json"
    printf ',\n  "shards": %d,\n  "shard_live": %d,\n  "shard_parked": %d,\n  "shard_rss_kb": %d\n}\n' \
        "$SHARDS" "$TOT_LIVE" "$TOT_PARKED" "$TOT_RSS_KB"
} > .bench/density.json

[ "$TOT_LIVE" -ge "$RESIDENT" ] || {
    echo "density-ab: only $TOT_LIVE of $RESIDENT sessions resident"; exit 1; }

ERRORS=$(tr ',' '\n' < .bench/density.json | sed -n 's/.*"errors": *//p' | head -1)
[ "$ERRORS" = "0" ] || { echo "density-ab: $ERRORS tick errors"; exit 1; }

echo "density-ab: PASS — report in .bench/density.json"
exit 0
