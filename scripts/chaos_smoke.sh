#!/bin/sh
# chaos_smoke.sh — chaos soak of the sharded serving tier, run by
# `make chaos-smoke` (and `make ci`).
#
# First proves the chaos layer's determinism contract: the same seed must
# print the same fault schedule twice, and a different seed must print a
# different one. Then runs the full rebudget-chaos soak — two shards and a
# router under scripted partitions, a shard kill/restart, a latency spike
# and snapshot corruption — which asserts zero lost sessions, bit-identity
# to an undisturbed baseline, a bounded client error rate, breaker
# transitions in the router's /metrics and the snapshot checksum catching
# scripted corruption. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)

cleanup() {
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

SEED=${CHAOS_SEED:-7}

echo "chaos-smoke: building rebudget-chaos"
go build -o "$TMP/rebudget-chaos" ./cmd/rebudget-chaos || exit 1

echo "chaos-smoke: checking schedule determinism (seed $SEED)"
"$TMP/rebudget-chaos" -print-schedule -seed "$SEED" > "$TMP/sched_a" || exit 1
"$TMP/rebudget-chaos" -print-schedule -seed "$SEED" > "$TMP/sched_b" || exit 1
if ! cmp -s "$TMP/sched_a" "$TMP/sched_b"; then
    echo "chaos-smoke: FAIL: same seed produced different schedules" >&2
    diff "$TMP/sched_a" "$TMP/sched_b" >&2
    exit 1
fi
if [ ! -s "$TMP/sched_a" ]; then
    echo "chaos-smoke: FAIL: schedule for seed $SEED is empty" >&2
    exit 1
fi
"$TMP/rebudget-chaos" -print-schedule -seed $((SEED + 1)) > "$TMP/sched_c" || exit 1
if cmp -s "$TMP/sched_a" "$TMP/sched_c"; then
    echo "chaos-smoke: FAIL: different seeds produced the same schedule" >&2
    exit 1
fi

echo "chaos-smoke: running the soak (seed $SEED)"
"$TMP/rebudget-chaos" -seed "$SEED" || exit 1

echo "chaos-smoke: OK"
