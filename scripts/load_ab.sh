#!/bin/sh
# load_ab.sh — the cost-vs-count admission A/B behind this repo's headline
# serving-tier claim: under a 90/10 cheap/expensive session mix at
# saturation, pricing admission in cost units must cut the cheap class's
# p99 epoch latency by >=25% versus the legacy request-count admission.
#
# Runs rebudget-loadgen twice against a fresh rebudgetd each time — once
# with -admission cost, once with -admission count — using identical mix,
# seed and duration, then reports both cheap p99s and the improvement.
# Reports land in .bench/loadgen_cost.json and .bench/loadgen_count.json,
# where scripts/bench_record.sh folds them into the dated BENCH_*.json.
#
# Usage: scripts/load_ab.sh [duration]   (default 30s)
# AB_STRICT=1 fails the run when the improvement is below 25%.
set -u

cd "$(dirname "$0")/.."
DURATION="${1:-30s}"
STRICT="${AB_STRICT:-0}"
TMP=$(mktemp -d)
DPID=""
mkdir -p .bench

cleanup() {
    if [ -n "$DPID" ] && kill -0 "$DPID" 2>/dev/null; then
        kill -9 "$DPID" 2>/dev/null
        wait "$DPID" 2>/dev/null
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "load-ab: building rebudgetd and rebudget-loadgen"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-loadgen" ./cmd/rebudget-loadgen || exit 1

wait_addr() {
    _log=$1
    _pid=$2
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*listening.*addr=//p' "$_log" | sed 's/ .*//' | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "load-ab: daemon died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "load-ab: daemon never reported its address" >&2
    return 1
}

# run_mode MODE EXTRA_FLAGS: boot a daemon in MODE, drive it, tear it down.
run_mode() {
    _mode=$1
    shift
    : > "$TMP/d.log"
    # Cost knobs are sized for a small CI box: capacity 16 units keeps the
    # cheap class (0.25u leases) off the admission limit on its own, while
    # the queued-cost bound of 8 units means a second concurrent expensive
    # solve (~6u) is 429-clipped immediately instead of parking at the FIFO
    # head where it would block every cheap request behind it. Both flags
    # are inert under -admission count (capacity = workers there).
    # shellcheck disable=SC2086
    "$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 0 -admission "$_mode" \
        -cost-capacity 16 -max-queued-cost 8 "$@" \
        2> "$TMP/d.log" &
    DPID=$!
    _addr=$(wait_addr "$TMP/d.log" "$DPID") || return 1
    echo "load-ab: $_mode daemon up at $_addr; driving for $DURATION"
    "$TMP/rebudget-loadgen" -target "http://$_addr" -label "ab-$_mode" \
        -sessions 40 -cheap-frac 0.9 -expensive-mech rebudget-0.1 \
        -concurrency 48 -duration "$DURATION" \
        -seed 7 -out ".bench/loadgen_$_mode.json" 2> "$TMP/lg-$_mode.log" \
        || { cat "$TMP/lg-$_mode.log"; return 1; }
    kill -TERM "$DPID" 2>/dev/null
    wait "$DPID" 2>/dev/null
    DPID=""
    return 0
}

# cheap_p99 FILE: the cheap class's p99_ms from a loadgen report.
cheap_p99() {
    awk '/"cheap"/ { f = 1 } f && /"p99_ms"/ {
        v = $2; gsub(/[^0-9.]/, "", v); print v; exit }' "$1"
}

run_mode cost || exit 1
run_mode count || exit 1

COST=$(cheap_p99 .bench/loadgen_cost.json)
COUNT=$(cheap_p99 .bench/loadgen_count.json)
if [ -z "$COST" ] || [ -z "$COUNT" ]; then
    echo "load-ab: could not parse cheap p99 from the reports"
    exit 1
fi
awk -v cost="$COST" -v count="$COUNT" 'BEGIN {
    imp = (1 - cost / count) * 100
    printf "load-ab: cheap p99 — count admission %.1f ms, cost admission %.1f ms (%.1f%% improvement)\n",
        count, cost, imp
}'
ok=$(awk -v cost="$COST" -v count="$COUNT" 'BEGIN { print (cost <= count * 0.75) ? 1 : 0 }')
if [ "$ok" != "1" ]; then
    echo "load-ab: WARNING: cost admission did not deliver a >=25% cheap-p99 win"
    [ "$STRICT" = "1" ] && exit 1
fi
echo "load-ab: reports in .bench/loadgen_cost.json and .bench/loadgen_count.json"
exit 0
