#!/bin/sh
# router_smoke.sh — end-to-end smoke test of the sharded serving tier, run
# by `make router-smoke` (and `make ci`).
#
# Boots two rebudgetd shards sharing one snapshot directory plus a
# rebudget-router in front of them, places 8 sessions through the router,
# then SIGTERMs one shard: its sessions must fail over to the survivor and
# resume from their snapshots with no lost epochs, and the router's
# failover/reroute counters must move. Ends with a clean drain of the
# whole tier. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID1=""
PID2=""
RPID=""

cleanup() {
    for p in "$RPID" "$PID1" "$PID2"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null
            wait "$p" 2>/dev/null
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "router-smoke: building rebudgetd, rebudget-router and rebudget-smoke"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-router" ./cmd/rebudget-router || exit 1
go build -o "$TMP/rebudget-smoke" ./cmd/rebudget-smoke || exit 1

# wait_addr LOGFILE PID NAME: echo the addr= the process logged on startup.
wait_addr() {
    _log=$1
    _pid=$2
    _name=$3
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*listening.*addr=//p' "$_log" | sed 's/ .*//' | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "router-smoke: $_name died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "router-smoke: $_name never reported its address:" >&2
    cat "$_log" >&2
    return 1
}

# wait_gone PID NAME: wait (15s) for a SIGTERMed process to drain and exit.
wait_gone() {
    _pid=$1
    _name=$2
    _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        if [ $_i -ge 150 ]; then
            echo "router-smoke: $_name did not drain within 15s"
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    wait "$_pid" 2>/dev/null
    return 0
}

SNAPDIR="$TMP/snapshots"

"$TMP/rebudgetd" -addr 127.0.0.1:0 -snapshot-dir "$SNAPDIR" 2> "$TMP/shard1.log" &
PID1=$!
"$TMP/rebudgetd" -addr 127.0.0.1:0 -snapshot-dir "$SNAPDIR" 2> "$TMP/shard2.log" &
PID2=$!
ADDR1=$(wait_addr "$TMP/shard1.log" "$PID1" "shard 1") || exit 1
ADDR2=$(wait_addr "$TMP/shard2.log" "$PID2" "shard 2") || exit 1
echo "router-smoke: shards up at $ADDR1 (pid $PID1) and $ADDR2 (pid $PID2)"

"$TMP/rebudget-router" -addr 127.0.0.1:0 -probe-interval 200ms \
    -backends "http://$ADDR1,http://$ADDR2" 2> "$TMP/router.log" &
RPID=$!
RADDR=$(wait_addr "$TMP/router.log" "$RPID" "router") || exit 1
echo "router-smoke: router up at $RADDR (pid $RPID)"

# Place 8 sessions through the router, 2 epochs each, left resident.
i=1
while [ $i -le 8 ]; do
    if ! "$TMP/rebudget-smoke" -base "http://$RADDR" -id "rs$i" \
        -epochs 2 -keep -checks none > /dev/null; then
        echo "router-smoke: placing session rs$i failed; router log:"
        cat "$TMP/router.log"
        exit 1
    fi
    i=$((i + 1))
done
echo "router-smoke: 8 sessions placed through the router"

# The kill only proves failover if the victim actually holds sessions; the
# ring splits 8 ids across 2 shards essentially always, but port-derived
# hashing makes placement run-dependent, so top up until shard 1 owns some.
extra=0
while ! "$TMP/rebudget-smoke" -base "http://$ADDR1" -metrics-only \
    -checks 'rebudgetd_sessions_live>=1' > /dev/null 2>&1; do
    extra=$((extra + 1))
    if [ $extra -gt 24 ]; then
        echo "router-smoke: could not land a session on shard 1"
        exit 1
    fi
    "$TMP/rebudget-smoke" -base "http://$RADDR" -id "rs-extra$extra" \
        -epochs 2 -keep -checks none > /dev/null || exit 1
done

# Kill shard 1: SIGTERM drains it — /healthz flips 503 (the router's probe
# marks it down) and every resident session is snapshotted on exit.
echo "router-smoke: draining shard 1"
kill -TERM "$PID1"
wait_gone "$PID1" "shard 1" || exit 1
PID1=""

# Every session must still be reachable through the router — the stranded
# ones rehydrate on shard 2 from the shared snapshot dir, progress intact.
i=1
while [ $i -le 8 ]; do
    if ! "$TMP/rebudget-smoke" -base "http://$RADDR" -id "rs$i" \
        -resume 2 -epochs 1 -keep -checks none > /dev/null; then
        echo "router-smoke: session rs$i lost in the failover; logs:"
        cat "$TMP/router.log" "$TMP/shard2.log"
        exit 1
    fi
    i=$((i + 1))
done
echo "router-smoke: all 8 sessions survived the shard kill"

# The router's counters must reflect the failover, and the survivor must
# report actual snapshot restores (migration, not silent recreation).
if ! "$TMP/rebudget-smoke" -base "http://$RADDR" -metrics-only -checks \
    'rebudget_router_up>=1,rebudget_router_shards>=2,rebudget_router_sessions_placed_total>=8,rebudget_router_failovers_total>=1,rebudget_router_rerouted_epochs_total>=1'; then
    echo "router-smoke: router metrics check failed; router log:"
    cat "$TMP/router.log"
    exit 1
fi
if ! "$TMP/rebudget-smoke" -base "http://$ADDR2" -metrics-only -checks \
    'rebudgetd_snapshots_total{op="restore"}>=1'; then
    echo "router-smoke: survivor reports no snapshot restores; log:"
    cat "$TMP/shard2.log"
    exit 1
fi

# Clean drain of the remaining tier: router first, then the survivor.
kill -TERM "$RPID"
wait_gone "$RPID" "router" || exit 1
RPID=""
kill -TERM "$PID2"
wait_gone "$PID2" "shard 2" || exit 1
PID2=""
echo "router-smoke: tier drained cleanly; PASS"
exit 0
