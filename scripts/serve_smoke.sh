#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving layer, run by
# `make serve-smoke` (and `make ci`).
#
# Builds rebudgetd and rebudget-smoke, starts the daemon on a random
# loopback port with a temp snapshot directory, drives one session through
# 3 epochs with the typed client, scrapes /metrics and asserts the serving
# counters moved, then SIGTERMs the daemon and checks it drains cleanly —
# snapshotting the session on the way out. A second daemon run against the
# same directory must rehydrate the session with its progress intact. The
# temp snapshot dir is removed with the rest of the scratch space. Any
# failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID=""

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null
        wait "$PID" 2>/dev/null
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building rebudgetd and rebudget-smoke"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-smoke" ./cmd/rebudget-smoke || exit 1

SNAPDIR="$TMP/snapshots"

# wait_addr LOGFILE: poll the daemon log (PID already set by the caller —
# a command-substitution subshell could not set it) and echo the bound
# address once the daemon reports it.
wait_addr() {
    _log=$1
    _i=0
    while [ $_i -lt 50 ]; do
        _addr=$(sed -n 's/.*rebudgetd listening.*addr=//p' "$_log" | head -1)
        if [ -n "$_addr" ]; then
            echo "$_addr"
            return 0
        fi
        if ! kill -0 "$PID" 2>/dev/null; then
            echo "serve-smoke: daemon died before listening:" >&2
            cat "$_log" >&2
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "serve-smoke: daemon never reported its address:" >&2
    cat "$_log" >&2
    return 1
}

# drain_daemon: SIGTERM must stop the daemon within its drain budget.
drain_daemon() {
    kill -TERM "$PID"
    _i=0
    while kill -0 "$PID" 2>/dev/null; do
        if [ $_i -ge 150 ]; then
            echo "serve-smoke: daemon did not drain within 15s"
            return 1
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    wait "$PID" 2>/dev/null
    PID=""
    return 0
}

"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 1m -snapshot-dir "$SNAPDIR" 2> "$TMP/daemon.log" &
PID=$!
ADDR=$(wait_addr "$TMP/daemon.log") || exit 1
echo "serve-smoke: daemon up at $ADDR (pid $PID)"

# 3 epochs, default metric assertions; -keep leaves the session resident so
# the drain below snapshots it.
if ! "$TMP/rebudget-smoke" -base "http://$ADDR" -epochs 3 -keep; then
    echo "serve-smoke: client check failed; daemon log:"
    cat "$TMP/daemon.log"
    exit 1
fi

drain_daemon || exit 1
if [ ! -f "$SNAPDIR/smoke.json" ]; then
    echo "serve-smoke: drain did not write the session snapshot"
    ls -la "$SNAPDIR" 2>/dev/null
    exit 1
fi
echo "serve-smoke: daemon drained cleanly, session snapshotted"

# Second run against the same snapshot dir: the first touch must rehydrate
# the session with its 3 epochs intact, and one more epoch must come from a
# warm equilibrium — not a cold recreation.
"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 1m -snapshot-dir "$SNAPDIR" 2> "$TMP/daemon2.log" &
PID=$!
ADDR=$(wait_addr "$TMP/daemon2.log") || exit 1
echo "serve-smoke: daemon restarted at $ADDR (pid $PID)"
if ! "$TMP/rebudget-smoke" -base "http://$ADDR" -resume 3 -epochs 1 -checks \
    'rebudgetd_snapshots_total{op="restore"}>=1,rebudgetd_epochs_served_total>=1'; then
    echo "serve-smoke: rehydrate check failed; daemon log:"
    cat "$TMP/daemon2.log"
    exit 1
fi

drain_daemon || exit 1
echo "serve-smoke: rehydrated daemon drained cleanly; PASS"
exit 0
