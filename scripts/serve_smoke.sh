#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the serving layer, run by
# `make serve-smoke` (and `make ci`).
#
# Builds rebudgetd and rebudget-smoke, starts the daemon on a random
# loopback port, drives one session through 3 epochs with the typed client,
# scrapes /metrics and asserts the serving counters moved, then SIGTERMs the
# daemon and checks it drains cleanly. Any failure exits non-zero.
set -u

cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
PID=""

cleanup() {
    if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null
        wait "$PID" 2>/dev/null
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building rebudgetd and rebudget-smoke"
go build -o "$TMP/rebudgetd" ./cmd/rebudgetd || exit 1
go build -o "$TMP/rebudget-smoke" ./cmd/rebudget-smoke || exit 1

# Port 0 lets the kernel pick; the daemon logs the bound address.
"$TMP/rebudgetd" -addr 127.0.0.1:0 -idle-ttl 1m 2> "$TMP/daemon.log" &
PID=$!

ADDR=""
i=0
while [ $i -lt 50 ]; do
    ADDR=$(sed -n 's/.*rebudgetd listening.*addr=//p' "$TMP/daemon.log" | head -1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon died before listening:"
        cat "$TMP/daemon.log"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: daemon never reported its address:"
    cat "$TMP/daemon.log"
    exit 1
fi
echo "serve-smoke: daemon up at $ADDR (pid $PID)"

if ! "$TMP/rebudget-smoke" -base "http://$ADDR" -epochs 3; then
    echo "serve-smoke: client check failed; daemon log:"
    cat "$TMP/daemon.log"
    exit 1
fi

# Graceful drain: SIGTERM must stop the daemon within its drain budget.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    if [ $i -ge 150 ]; then
        echo "serve-smoke: daemon did not drain within 15s"
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$PID" 2>/dev/null
PID=""
echo "serve-smoke: daemon drained cleanly; PASS"
exit 0
