#!/bin/sh
# bench_smoke.sh — non-blocking perf smoke test for `make ci`.
#
# Runs BenchmarkMarketEquilibrium64 (the hot allocation kernel) and compares
# it against the stored baseline in .bench/baseline.txt. A >10% ns/op
# regression prints a loud warning but never fails the build: benchmarks on
# shared/loaded CI hosts are too noisy to gate on, and the warning is the
# signal a human should re-measure on quiet hardware. Uses benchstat when
# installed, a plain awk comparison otherwise (nothing is downloaded).
#
# Refresh the baseline after an intentional perf change:
#   rm -rf .bench && scripts/bench_smoke.sh
set -u

cd "$(dirname "$0")/.."
BENCH='^BenchmarkMarketEquilibrium64$'
DIR=.bench
BASE="$DIR/baseline.txt"
CUR="$DIR/current.txt"
mkdir -p "$DIR"

if ! go test -run '^$' -bench "$BENCH" -benchtime 5x -count 3 . > "$CUR" 2>&1; then
    echo "bench-smoke: benchmark failed to run (not fatal):"
    cat "$CUR"
    exit 0
fi

if [ ! -f "$BASE" ]; then
    cp "$CUR" "$BASE"
    echo "bench-smoke: recorded new baseline in $BASE"
    exit 0
fi

if command -v benchstat >/dev/null 2>&1; then
    echo "bench-smoke: benchstat baseline vs current"
    benchstat "$BASE" "$CUR" || true
fi

# Compare mean ns/op with awk regardless, so the >10% warning works without
# benchstat too.
# Note: go omits the -N procs suffix from the name when GOMAXPROCS is 1.
mean() {
    awk '$1 ~ /^BenchmarkMarketEquilibrium64(-[0-9]+)?$/ { s += $3; n++ } END { if (n) printf "%.0f", s / n }' "$1"
}
old=$(mean "$BASE")
new=$(mean "$CUR")
if [ -z "$old" ] || [ -z "$new" ]; then
    echo "bench-smoke: could not parse ns/op (not fatal)"
    exit 0
fi
echo "bench-smoke: MarketEquilibrium64 mean ns/op: baseline $old, current $new"
awk -v old="$old" -v new="$new" 'BEGIN {
    if (new > old * 1.10) {
        printf "bench-smoke: WARNING: MarketEquilibrium64 regressed %.1f%% (>10%%); re-measure on quiet hardware\n",
            (new / old - 1) * 100
    } else {
        print "bench-smoke: within 10% of baseline"
    }
}'
exit 0
