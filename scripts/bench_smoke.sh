#!/bin/sh
# bench_smoke.sh — perf smoke test for `make ci`.
#
# Runs the three load-bearing kernels — BenchmarkMarketEquilibrium64 (the
# hot allocation solver), BenchmarkFig5Simulation (the end-to-end detailed
# simulation), and BenchmarkChipEpoch64 (the single-chip epoch hot path) —
# and compares each against the most recent recorded snapshot: the newest
# BENCH_*.json written by scripts/bench_record.sh, falling back to
# .bench/baseline.txt when no snapshot exists (the first snapshot then gets
# recorded from this run's numbers). A benchmark missing from the snapshot
# is skipped, so older snapshots stay usable after new benches are added.
#
# A >10% ns/op regression prints a loud warning. By default that never fails
# the build: benchmarks on shared/loaded CI hosts are too noisy to gate on,
# and the warning is the signal a human should re-measure on quiet hardware.
# Set BENCH_STRICT=1 to turn the warning into a non-zero exit — for quiet
# perf-qualification machines where the numbers are trustworthy:
#
#   BENCH_STRICT=1 make bench-smoke
#
# Refresh the reference after an intentional perf change:
#   scripts/bench_record.sh        # writes a new dated BENCH_*.json
set -u

cd "$(dirname "$0")/.."
NAMES='BenchmarkMarketEquilibrium64 BenchmarkFig5Simulation BenchmarkChipEpoch64 BenchmarkServeEpoch BenchmarkTenantRebalance BenchmarkStoreParallelGet/segments=16 BenchmarkMetricsRender50k/default'
BENCH='^(BenchmarkMarketEquilibrium64|BenchmarkFig5Simulation|BenchmarkChipEpoch64|BenchmarkServeEpoch|BenchmarkTenantRebalance)$'
SRVBENCH='^(BenchmarkStoreParallelGet|BenchmarkMetricsRender50k)$'
DIR=.bench
BASE="$DIR/baseline.txt"
CUR="$DIR/current.txt"
STRICT="${BENCH_STRICT:-0}"
mkdir -p "$DIR"

if ! go test -run '^$' -bench "$BENCH" -benchtime 5x -count 3 . > "$CUR" 2>&1; then
    echo "bench-smoke: benchmark failed to run:"
    cat "$CUR"
    [ "$STRICT" = "1" ] && exit 1
    exit 0
fi
if ! go test -run '^$' -bench "$SRVBENCH" -benchtime 5x -count 3 ./internal/server >> "$CUR" 2>&1; then
    echo "bench-smoke: server benchmarks failed to run:"
    cat "$CUR"
    [ "$STRICT" = "1" ] && exit 1
    exit 0
fi

# Reference source: the newest dated snapshot, else the legacy text baseline.
latest=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -z "$latest" ] && [ ! -f "$BASE" ]; then
    cp "$CUR" "$BASE"
    echo "bench-smoke: no prior snapshot; recorded baseline in $BASE (run scripts/bench_record.sh for a dated one)"
    exit 0
fi

if command -v benchstat >/dev/null 2>&1 && [ -f "$BASE" ]; then
    echo "bench-smoke: benchstat baseline vs current"
    benchstat "$BASE" "$CUR" || true
fi

fail=0
for NAME in $NAMES; do
    # Mean ns/op of the fresh run.
    # Note: go omits the -N procs suffix from the name when GOMAXPROCS is 1.
    new=$(awk -v name="$NAME" '$1 ~ "^" name "(-[0-9]+)?$" { s += $3; n++ } END { if (n) printf "%.0f", s / n }' "$CUR")
    if [ -z "$new" ]; then
        echo "bench-smoke: $NAME: could not parse ns/op from this run"
        fail=1
        continue
    fi

    old=""
    src=""
    if [ -n "$latest" ]; then
        old=$(tr ',' '\n' < "$latest" | awk -v name="$NAME" '
            $0 ~ "\"name\": \"" name "\"" { found = 1 }
            found && /"ns_per_op"/ { gsub(/[^0-9.]/, "", $0); print; exit }')
        src="$latest"
    elif [ -f "$BASE" ]; then
        old=$(awk -v name="$NAME" '$1 ~ "^" name "(-[0-9]+)?$" { s += $3; n++ } END { if (n) printf "%.0f", s / n }' "$BASE")
        src="$BASE"
    fi
    if [ -z "$old" ]; then
        echo "bench-smoke: $NAME: not in $src; skipping (re-run scripts/bench_record.sh to include it)"
        continue
    fi

    echo "bench-smoke: $NAME mean ns/op: reference $old ($src), current $new"
    regressed=$(awk -v old="$old" -v new="$new" 'BEGIN { print (new > old * 1.10) ? 1 : 0 }')
    if [ "$regressed" = "1" ]; then
        awk -v name="$NAME" -v old="$old" -v new="$new" 'BEGIN {
            printf "bench-smoke: WARNING: %s regressed %.1f%% (>10%%); re-measure on quiet hardware\n",
                name, (new / old - 1) * 100
        }'
        fail=1
    else
        echo "bench-smoke: $NAME within 10% of reference"
    fi
done

# Serving-tier gate: when the newest snapshot carries a loadgen A/B (see
# scripts/load_ab.sh), the recorded cost-admission cheap p99 must hold its
# >=25% win over count admission. This checks the *recorded* numbers — the
# snapshot is the claim a change must not silently erase; re-measure with
# scripts/load_ab.sh after intentional serving changes.
if [ -n "$latest" ] && grep -q '"loadgen"' "$latest"; then
    cost=$(awk '/"loadgen"/ { lg = 1 } lg && /"cost"/ { m = 1 } m && /"cheap"/ { c = 1 }
        c && /"p99_ms"/ { v = $2; gsub(/[^0-9.]/, "", v); print v; exit }' "$latest")
    count=$(awk '/"count"/ { m = 1 } m && /"cheap"/ { c = 1 }
        c && /"p99_ms"/ { v = $2; gsub(/[^0-9.]/, "", v); print v; exit }' "$latest")
    if [ -n "$cost" ] && [ -n "$count" ]; then
        echo "bench-smoke: recorded loadgen cheap p99: cost ${cost}ms vs count ${count}ms"
        held=$(awk -v c="$cost" -v n="$count" 'BEGIN { print (c <= n * 0.75) ? 1 : 0 }')
        if [ "$held" = "1" ]; then
            echo "bench-smoke: cost-admission >=25% cheap-p99 win holds in $latest"
        else
            echo "bench-smoke: WARNING: recorded A/B in $latest shows <25% cheap-p99 win; re-run scripts/load_ab.sh"
            fail=1
        fi
    else
        echo "bench-smoke: $latest has a loadgen section but no parseable cheap p99s"
        fail=1
    fi
fi

if [ "$fail" = "1" ] && [ "$STRICT" = "1" ]; then
    echo "bench-smoke: BENCH_STRICT=1 set; failing"
    exit 1
fi
exit 0
