// api_test.go exercises the public facade end to end, the way a downstream
// user would drive the library.
package rebudget_test

import (
	"math"
	"testing"

	"rebudget"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	bundle, err := rebudget.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := rebudget.NewSetup(bundle)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rebudget.ReBudget{Step: 20}.Allocate(setup.Capacity, setup.Players)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mechanism != "ReBudget-20" {
		t.Errorf("mechanism = %s", out.Mechanism)
	}
	if out.Efficiency() <= 0 || out.Efficiency() > float64(len(setup.Players)) {
		t.Errorf("efficiency %g out of range", out.Efficiency())
	}
	ef, err := out.EnvyFreeness(setup.Players)
	if err != nil {
		t.Fatal(err)
	}
	if ef < out.EFBound()-1e-9 {
		t.Errorf("EF %g below Theorem 2 bound %g", ef, out.EFBound())
	}
}

func TestFacadeTheoremHelpers(t *testing.T) {
	mur, err := rebudget.MUR([]float64{1, 2})
	if err != nil || mur != 0.5 {
		t.Errorf("MUR = %g (%v)", mur, err)
	}
	mbr, err := rebudget.MBR([]float64{50, 100})
	if err != nil || mbr != 0.5 {
		t.Errorf("MBR = %g (%v)", mbr, err)
	}
	if got := rebudget.PoALowerBound(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("PoALowerBound(1) = %g", got)
	}
	if got := rebudget.EnvyFreenessBound(1); math.Abs(got-(2*math.Sqrt2-2)) > 1e-12 {
		t.Errorf("EnvyFreenessBound(1) = %g", got)
	}
	floor, err := rebudget.MinMBRForEnvyFreeness(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := rebudget.EnvyFreenessBound(floor); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MinMBRForEnvyFreeness roundtrip = %g", got)
	}
}

func TestFacadeCustomMarket(t *testing.T) {
	// A user-defined market with hand-written utilities.
	u := rebudget.UtilityFunc(func(a []float64) float64 {
		return math.Sqrt(a[0]/100) * 0.5
	})
	players := []*rebudget.Player{
		{Name: "a", Utility: u, Budget: 10},
		{Name: "b", Utility: u, Budget: 30},
	}
	m, err := rebudget.NewMarket([]float64{100}, players, rebudget.DefaultMarketConfig())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := m.FindEquilibrium()
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Converged {
		t.Error("simple market did not converge")
	}
	// 3× the budget buys 3× the single resource.
	if ratio := eq.Allocations[1][0] / eq.Allocations[0][0]; math.Abs(ratio-3) > 0.01 {
		t.Errorf("allocation ratio %g, want 3", ratio)
	}
}

func TestFacadeCatalogAndClasses(t *testing.T) {
	cat := rebudget.Catalog()
	if len(cat) != 24 {
		t.Fatalf("catalog size %d", len(cat))
	}
	counts := map[rebudget.AppClass]int{}
	for _, s := range cat {
		counts[s.Class]++
	}
	for _, cl := range []rebudget.AppClass{
		rebudget.ClassCache, rebudget.ClassPower, rebudget.ClassBoth, rebudget.ClassNone,
	} {
		if counts[cl] != 6 {
			t.Errorf("class %v count %d", cl, counts[cl])
		}
	}
	spec, err := rebudget.LookupApp("mcf")
	if err != nil {
		t.Fatal(err)
	}
	model := rebudget.NewAppModel(spec)
	curve, err := model.AnalyticMissCurve()
	if err != nil {
		t.Fatal(err)
	}
	u, err := rebudget.NewAppUtility(model, curve)
	if err != nil {
		t.Fatal(err)
	}
	if v := u.Value([]float64{15, 20}); v < 0.9 {
		t.Errorf("mcf near-max utility %g, want ≈1", v)
	}
}

func TestFacadeBundleGeneration(t *testing.T) {
	bundles, err := rebudget.GenerateBundles(8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 12 {
		t.Fatalf("bundle count %d", len(bundles))
	}
	if len(rebudget.Categories()) != 6 {
		t.Error("category count wrong")
	}
}

func TestFacadeSimulation(t *testing.T) {
	bundles, err := rebudget.GenerateBundles(4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rebudget.DefaultSimConfig(4)
	cfg.Epochs = 4
	cfg.WarmupEpochs = 2
	cfg.MaxAccessesPerCoreEpoch = 2000
	chip, err := rebudget.NewChip(cfg, bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.Run(rebudget.EqualBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeightedSpeedup <= 0 {
		t.Error("no throughput measured")
	}
	sys := rebudget.NewSystemConfig(4)
	if sys.PowerBudgetW != 40 {
		t.Errorf("system config power %g", sys.PowerBudgetW)
	}
}

func TestFacadeAllMechanismsAgreeOnShape(t *testing.T) {
	bundle, err := rebudget.Figure3Bundle()
	if err != nil {
		t.Fatal(err)
	}
	setup, err := rebudget.NewSetup(bundle)
	if err != nil {
		t.Fatal(err)
	}
	mechs := []rebudget.Allocator{
		rebudget.EqualShare{},
		rebudget.EqualBudget{},
		rebudget.Balanced{},
		rebudget.ReBudget{Step: 20},
		rebudget.ReBudget{MinEnvyFreeness: 0.5},
		rebudget.MaxEfficiency{},
	}
	for _, m := range mechs {
		out, err := m.Allocate(setup.Capacity, setup.Players)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(out.Allocations) != len(setup.Players) {
			t.Fatalf("%s: allocation shape", m.Name())
		}
		for j, c := range setup.Capacity {
			total := 0.0
			for i := range out.Allocations {
				total += out.Allocations[i][j]
			}
			if total > c*(1+1e-6) {
				t.Errorf("%s over-allocates resource %d: %g > %g", m.Name(), j, total, c)
			}
		}
	}
}
